// Approximate butterfly counting by sampling, after Sanei-Mehri, Sariyüce &
// Tirthapura (KDD'18) — the approximate-counting line of work the paper's
// introduction cites [10]. Three unbiased estimators:
//
//  - vertex sampling: E[butterflies at a uniform V1 vertex] = 2Ξ/|V1|;
//  - edge sampling:   E[support of a uniform edge]          = 4Ξ/|E|;
//  - wedge sampling:  E[B_uw − 1 over a uniform wedge]      = 2Ξ/W.
//
// Each estimator returns the point estimate plus the sample standard error
// so callers can reason about confidence.
#pragma once

#include "graph/bipartite_graph.hpp"
#include "util/common.hpp"

namespace bfc::count {

struct ApproxResult {
  double estimate = 0.0;        // estimated Ξ_G
  double standard_error = 0.0;  // of the estimate
  std::int64_t samples = 0;     // samples actually drawn
};

struct ApproxOptions {
  std::int64_t samples = 1000;
  std::uint64_t seed = 0x5eed;
};

/// Samples uniform V1 vertices and counts the butterflies each sits in.
[[nodiscard]] ApproxResult approx_vertex_sampling(
    const graph::BipartiteGraph& g, const ApproxOptions& options = {});

/// Samples uniform edges and computes each edge's butterfly support.
[[nodiscard]] ApproxResult approx_edge_sampling(
    const graph::BipartiteGraph& g, const ApproxOptions& options = {});

/// Samples uniform wedges with endpoints in V1 (wedge point drawn
/// proportionally to C(deg, 2)) and counts the closing wedges.
[[nodiscard]] ApproxResult approx_wedge_sampling(
    const graph::BipartiteGraph& g, const ApproxOptions& options = {});

/// Estimates the *tip number* of one V1 vertex u (butterflies containing
/// u, Eq. 19) by sampling wedges anchored at u: pick a wedge u—k—j with
/// probability proportional to 1 among u's W_u = Σ_{k∈N(u)} (deg k − 1)
/// wedges, count the closing wedges |N(u)∩N(j)| − 1, and scale by W_u/2.
/// Unbiased for the same reason the global wedge estimator is; this is the
/// degraded-mode answer the serving layer falls back to when an exact tip
/// pass cannot be afforded under overload.
[[nodiscard]] ApproxResult approx_tip_v1(const graph::BipartiteGraph& g,
                                         vidx_t u,
                                         const ApproxOptions& options = {});

/// Same estimator anchored at a V2 vertex.
[[nodiscard]] ApproxResult approx_tip_v2(const graph::BipartiteGraph& g,
                                         vidx_t v,
                                         const ApproxOptions& options = {});

}  // namespace bfc::count
