// Butterfly enumeration. The paper's opening sentence distinguishes
// counting butterflies from enumerating them; this module produces the
// actual motif instances — each butterfly visited exactly once as
// (u1 < u2 ∈ V1, v1 < v2 ∈ V2) — via the same wedge expansion the counting
// kernels use.
#pragma once

#include <functional>
#include <vector>

#include "graph/bipartite_graph.hpp"
#include "util/common.hpp"

namespace bfc::count {

struct Butterfly {
  vidx_t u1, u2;  // V1 vertices, u1 < u2
  vidx_t v1, v2;  // V2 vertices, v1 < v2
  bool operator==(const Butterfly& other) const = default;
  auto operator<=>(const Butterfly& other) const = default;
};

/// Visits every butterfly exactly once in lexicographic (u1, u2, v1, v2)
/// order. Return false from the visitor to stop early; the function returns
/// the number of butterflies visited.
count_t for_each_butterfly(const graph::BipartiteGraph& g,
                           const std::function<bool(const Butterfly&)>& visit);

/// Materialises up to `limit` butterflies (lexicographic order). Throws
/// std::length_error if the graph holds more than `limit` — enumeration
/// output is Θ(Ξ_G), which grows far faster than the graph.
[[nodiscard]] std::vector<Butterfly> enumerate_butterflies(
    const graph::BipartiteGraph& g, count_t limit = count_t{1} << 22);

/// All butterflies containing a given V1 vertex (each exactly once).
[[nodiscard]] std::vector<Butterfly> butterflies_containing_v1(
    const graph::BipartiteGraph& g, vidx_t u, count_t limit = count_t{1} << 22);

}  // namespace bfc::count
