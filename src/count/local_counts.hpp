// Local butterfly statistics: butterflies per vertex (the tip vector of
// Eq. 19) and butterflies per edge (the wing support matrix of Eq. 25),
// computed sparsely in O(Σ wedges) / O(Σ_{(u,v)} deg v) — the inputs to the
// peeling algorithms of §IV.
//
// Each kernel has an overload taking a CancelToken: the serving layer runs
// these passes on behalf of deadline-bearing queries, and a checkpoint per
// outer-loop row lets an expired request abandon the scan (CancelledError)
// instead of finishing work nobody is waiting for. The token-free overloads
// pass an unarmed token and behave exactly as before.
#pragma once

#include "graph/bipartite_graph.hpp"
#include "sparse/csr.hpp"
#include "util/cancel.hpp"
#include "util/common.hpp"

namespace bfc::count {

/// Butterflies containing each V1 vertex: b_i = Σ_{j≠i} C(|N(i)∩N(j)|, 2).
[[nodiscard]] std::vector<count_t> butterflies_per_v1(
    const graph::BipartiteGraph& g);
[[nodiscard]] std::vector<count_t> butterflies_per_v1(
    const graph::BipartiteGraph& g, const CancelToken& cancel);

/// Butterflies containing each V2 vertex.
[[nodiscard]] std::vector<count_t> butterflies_per_v2(
    const graph::BipartiteGraph& g);
[[nodiscard]] std::vector<count_t> butterflies_per_v2(
    const graph::BipartiteGraph& g, const CancelToken& cancel);

/// Per-edge support in CSR order of g.csr(): entry k is the number of
/// butterflies containing the k-th edge — the sparse evaluation of Eq. (25):
/// support(u,v) = Σ_{w∈N(v)} |N(u)∩N(w)| − deg(u) − deg(v) + 1.
[[nodiscard]] std::vector<count_t> support_per_edge(
    const graph::BipartiteGraph& g);
[[nodiscard]] std::vector<count_t> support_per_edge(
    const graph::BipartiteGraph& g, const CancelToken& cancel);

}  // namespace bfc::count
