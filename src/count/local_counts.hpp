// Local butterfly statistics: butterflies per vertex (the tip vector of
// Eq. 19) and butterflies per edge (the wing support matrix of Eq. 25),
// computed sparsely in O(Σ wedges) / O(Σ_{(u,v)} deg v) — the inputs to the
// peeling algorithms of §IV.
#pragma once

#include "graph/bipartite_graph.hpp"
#include "sparse/csr.hpp"
#include "util/common.hpp"

namespace bfc::count {

/// Butterflies containing each V1 vertex: b_i = Σ_{j≠i} C(|N(i)∩N(j)|, 2).
[[nodiscard]] std::vector<count_t> butterflies_per_v1(
    const graph::BipartiteGraph& g);

/// Butterflies containing each V2 vertex.
[[nodiscard]] std::vector<count_t> butterflies_per_v2(
    const graph::BipartiteGraph& g);

/// Per-edge support in CSR order of g.csr(): entry k is the number of
/// butterflies containing the k-th edge — the sparse evaluation of Eq. (25):
/// support(u,v) = Σ_{w∈N(v)} |N(u)∩N(w)| − deg(u) − deg(v) + 1.
[[nodiscard]] std::vector<count_t> support_per_edge(
    const graph::BipartiteGraph& g);

}  // namespace bfc::count
