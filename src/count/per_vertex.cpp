#include "chk/checked_math.hpp"
#include "count/local_counts.hpp"

namespace bfc::count {
namespace {

/// b_i for every "line" i of `lines` (rows of the given pattern), where
/// `lines_t` is its transpose: expand wedges i -> k -> j (j ≠ i) and sum
/// C(w_ij, 2) per i. O(Σ wedges) with a dense accumulator. One cancellation
/// checkpoint per line: the dense accumulator is fully cleared between
/// lines, so abandoning there leaks no partial state.
std::vector<count_t> per_line(const sparse::CsrPattern& lines,
                              const sparse::CsrPattern& lines_t,
                              const CancelToken& cancel, const char* where) {
  std::vector<count_t> out(static_cast<std::size_t>(lines.rows()), 0);
  std::vector<count_t> acc(static_cast<std::size_t>(lines.rows()), 0);
  std::vector<vidx_t> touched;
  for (vidx_t i = 0; i < lines.rows(); ++i) {
    cancel.checkpoint(where);
    touched.clear();
    for (const vidx_t k : lines.row(i)) {
      for (const vidx_t j : lines_t.row(k)) {
        if (j == i) continue;
        if (acc[static_cast<std::size_t>(j)] == 0) touched.push_back(j);
        ++acc[static_cast<std::size_t>(j)];
      }
    }
    count_t total = 0;
    for (const vidx_t j : touched) {
      total = chk::checked_add(
          total, chk::checked_choose2(acc[static_cast<std::size_t>(j)]));
      acc[static_cast<std::size_t>(j)] = 0;
    }
    out[static_cast<std::size_t>(i)] = total;
  }
  return out;
}

}  // namespace

std::vector<count_t> butterflies_per_v1(const graph::BipartiteGraph& g) {
  return butterflies_per_v1(g, CancelToken{});
}

std::vector<count_t> butterflies_per_v1(const graph::BipartiteGraph& g,
                                        const CancelToken& cancel) {
  return per_line(g.csr(), g.csc(), cancel, "butterflies_per_v1");
}

std::vector<count_t> butterflies_per_v2(const graph::BipartiteGraph& g) {
  return butterflies_per_v2(g, CancelToken{});
}

std::vector<count_t> butterflies_per_v2(const graph::BipartiteGraph& g,
                                        const CancelToken& cancel) {
  return per_line(g.csc(), g.csr(), cancel, "butterflies_per_v2");
}

}  // namespace bfc::count
