#include "count/dynamic.hpp"

#include <algorithm>

namespace bfc::count {
namespace {

count_t ordered_intersection_size(const std::set<vidx_t>& a,
                                  const std::set<vidx_t>& b) {
  // Walk the smaller set, probe the larger: O(min·log max).
  const std::set<vidx_t>& small = a.size() <= b.size() ? a : b;
  const std::set<vidx_t>& large = a.size() <= b.size() ? b : a;
  count_t n = 0;
  for (const vidx_t x : small) n += large.contains(x) ? 1 : 0;
  return n;
}

}  // namespace

DynamicButterflyCounter::DynamicButterflyCounter(vidx_t n1, vidx_t n2)
    : n1_(n1), n2_(n2) {
  require(n1 >= 0 && n2 >= 0, "DynamicButterflyCounter: negative dimension");
  adj_v1_.resize(static_cast<std::size_t>(n1));
  adj_v2_.resize(static_cast<std::size_t>(n2));
}

bool DynamicButterflyCounter::has_edge(vidx_t u, vidx_t v) const {
  require(u >= 0 && u < n1_ && v >= 0 && v < n2_,
          "DynamicButterflyCounter: vertex out of range");
  return adj_v1_[static_cast<std::size_t>(u)].contains(v);
}

count_t DynamicButterflyCounter::support_of(vidx_t u, vidx_t v) const {
  // Butterflies through (u, v): for every other neighbour w of v, each
  // common neighbour of u and w besides v closes one butterfly.
  const std::set<vidx_t>& nu = adj_v1_[static_cast<std::size_t>(u)];
  count_t total = 0;
  for (const vidx_t w : adj_v2_[static_cast<std::size_t>(v)]) {
    if (w == u) continue;
    const count_t common =
        ordered_intersection_size(nu, adj_v1_[static_cast<std::size_t>(w)]);
    // Both N(u) and N(w) contain v, so common >= 1; subtract that shared v.
    total += common - 1;
  }
  return total;
}

count_t DynamicButterflyCounter::insert(vidx_t u, vidx_t v) {
  if (has_edge(u, v)) return 0;
  adj_v1_[static_cast<std::size_t>(u)].insert(v);
  adj_v2_[static_cast<std::size_t>(v)].insert(u);
  ++edges_;
  const count_t created = support_of(u, v);
  butterflies_ += created;
  return created;
}

count_t DynamicButterflyCounter::remove(vidx_t u, vidx_t v) {
  if (!has_edge(u, v)) return 0;
  const count_t destroyed = support_of(u, v);
  adj_v1_[static_cast<std::size_t>(u)].erase(v);
  adj_v2_[static_cast<std::size_t>(v)].erase(u);
  --edges_;
  butterflies_ -= destroyed;
  return destroyed;
}

}  // namespace bfc::count
