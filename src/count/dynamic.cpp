#include "chk/checked_math.hpp"
#include "count/dynamic.hpp"

#include <algorithm>

#include "sparse/csr.hpp"

namespace bfc::count {
namespace {

/// |a ∩ b| for sorted ranges. Linear two-pointer merge when the sizes are
/// comparable; when one side is much smaller, gallop (exponential search +
/// binary search) through the larger side so the cost is
/// O(min · log(max/min)) rather than O(min + max).
count_t sorted_intersection_size(std::span<const vidx_t> a,
                                 std::span<const vidx_t> b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;

  count_t n = 0;
  if (b.size() / a.size() >= 8) {
    // Galloping: positions in b advance monotonically because a is sorted.
    std::size_t lo = 0;
    for (const vidx_t x : a) {
      std::size_t step = 1;
      std::size_t hi = lo;
      while (hi < b.size() && b[hi] < x) {
        lo = hi + 1;
        hi += step;
        step *= 2;
      }
      hi = std::min(hi, b.size());
      const auto it = std::lower_bound(b.begin() + static_cast<std::ptrdiff_t>(lo),
                                       b.begin() + static_cast<std::ptrdiff_t>(hi), x);
      lo = static_cast<std::size_t>(it - b.begin());
      if (lo < b.size() && b[lo] == x) {
        ++n;
        ++lo;
      }
      if (lo >= b.size()) break;
    }
    return n;
  }

  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

/// Inserts x into the sorted vector; returns false if already present.
bool sorted_insert(std::vector<vidx_t>& v, vidx_t x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) return false;
  v.insert(it, x);
  return true;
}

/// Erases x from the sorted vector; returns false if absent.
bool sorted_erase(std::vector<vidx_t>& v, vidx_t x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) return false;
  v.erase(it);
  return true;
}

}  // namespace

DynamicButterflyCounter::DynamicButterflyCounter(vidx_t n1, vidx_t n2)
    : n1_(n1), n2_(n2) {
  require(n1 >= 0 && n2 >= 0, "DynamicButterflyCounter: negative dimension");
  adj_v1_.resize(static_cast<std::size_t>(n1));
  adj_v2_.resize(static_cast<std::size_t>(n2));
}

bool DynamicButterflyCounter::has_edge(vidx_t u, vidx_t v) const {
  require(u >= 0 && u < n1_ && v >= 0 && v < n2_,
          "DynamicButterflyCounter: vertex out of range");
  const std::vector<vidx_t>& nu = adj_v1_[static_cast<std::size_t>(u)];
  return std::binary_search(nu.begin(), nu.end(), v);
}

std::span<const vidx_t> DynamicButterflyCounter::neighbors_v1(vidx_t u) const {
  require(u >= 0 && u < n1_, "DynamicButterflyCounter: vertex out of range");
  return adj_v1_[static_cast<std::size_t>(u)];
}

std::span<const vidx_t> DynamicButterflyCounter::neighbors_v2(vidx_t v) const {
  require(v >= 0 && v < n2_, "DynamicButterflyCounter: vertex out of range");
  return adj_v2_[static_cast<std::size_t>(v)];
}

graph::BipartiteGraph DynamicButterflyCounter::to_graph() const {
  std::vector<offset_t> row_ptr;
  row_ptr.reserve(static_cast<std::size_t>(n1_) + 1);
  row_ptr.push_back(0);
  std::vector<vidx_t> col_idx;
  col_idx.reserve(static_cast<std::size_t>(edges_));
  for (const std::vector<vidx_t>& row : adj_v1_) {
    col_idx.insert(col_idx.end(), row.begin(), row.end());
    row_ptr.push_back(static_cast<offset_t>(col_idx.size()));
  }
  return graph::BipartiteGraph(
      sparse::CsrPattern(n1_, n2_, std::move(row_ptr), std::move(col_idx)));
}

count_t DynamicButterflyCounter::support_of(vidx_t u, vidx_t v) const {
  // Butterflies through (u, v): for every other neighbour w of v, each
  // common neighbour of u and w besides v closes one butterfly.
  const std::vector<vidx_t>& nu = adj_v1_[static_cast<std::size_t>(u)];
  count_t total = 0;
  for (const vidx_t w : adj_v2_[static_cast<std::size_t>(v)]) {
    if (w == u) continue;
    const count_t common = sorted_intersection_size(
        nu, adj_v1_[static_cast<std::size_t>(w)]);
    // Both N(u) and N(w) contain v, so common >= 1; subtract that shared v.
    total = chk::checked_add(total, common - 1);
  }
  return total;
}

count_t DynamicButterflyCounter::insert(vidx_t u, vidx_t v) {
  if (has_edge(u, v)) return 0;
  sorted_insert(adj_v1_[static_cast<std::size_t>(u)], v);
  sorted_insert(adj_v2_[static_cast<std::size_t>(v)], u);
  ++edges_;
  const count_t created = support_of(u, v);
  butterflies_ = chk::checked_add(butterflies_, created);
  return created;
}

count_t DynamicButterflyCounter::remove(vidx_t u, vidx_t v) {
  if (!has_edge(u, v)) return 0;
  const count_t destroyed = support_of(u, v);
  sorted_erase(adj_v1_[static_cast<std::size_t>(u)], v);
  sorted_erase(adj_v2_[static_cast<std::size_t>(v)], u);
  --edges_;
  butterflies_ = chk::checked_sub(butterflies_, destroyed);
  return destroyed;
}

}  // namespace bfc::count
