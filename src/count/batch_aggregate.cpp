#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "count/baselines.hpp"
#include "chk/checked_math.hpp"

namespace bfc::count {
namespace {

/// Wedge-point side and wedge budget for enumerating from the cheaper side.
struct Plan {
  const sparse::CsrPattern* wedge_points;  // rows = wedge points
  count_t wedges;
};

Plan plan_for(const graph::BipartiteGraph& g) {
  count_t via_v2 = 0;  // wedge points in V2, endpoints in V1
  for (vidx_t v = 0; v < g.n2(); ++v)
    via_v2 = chk::checked_add(via_v2, chk::checked_choose2(g.csc().row_degree(v)));
  count_t via_v1 = 0;
  for (vidx_t u = 0; u < g.n1(); ++u)
    via_v1 = chk::checked_add(via_v1, chk::checked_choose2(g.csr().row_degree(u)));
  if (via_v2 <= via_v1) return {&g.csc(), via_v2};
  return {&g.csr(), via_v1};
}

void check_budget(count_t wedges, count_t max_wedges) {
  if (wedges > max_wedges)
    throw std::length_error("batch counter: wedge list of " +
                            std::to_string(wedges) + " exceeds budget " +
                            std::to_string(max_wedges));
}

/// Endpoint pair (i < j) packed into one 64-bit key.
std::uint64_t pack(vidx_t i, vidx_t j) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)) << 32) |
         static_cast<std::uint32_t>(j);
}

}  // namespace

count_t batch_sort(const graph::BipartiteGraph& g, count_t max_wedges) {
  const Plan plan = plan_for(g);
  check_budget(plan.wedges, max_wedges);

  std::vector<std::uint64_t> wedges;
  wedges.reserve(static_cast<std::size_t>(plan.wedges));
  const auto& wp = *plan.wedge_points;
  for (vidx_t v = 0; v < wp.rows(); ++v) {
    const auto ends = wp.row(v);
    for (std::size_t i = 0; i < ends.size(); ++i)
      for (std::size_t j = i + 1; j < ends.size(); ++j)
        wedges.push_back(pack(ends[i], ends[j]));
  }

  std::sort(wedges.begin(), wedges.end());
  count_t total = 0;
  for (std::size_t i = 0; i < wedges.size();) {
    std::size_t j = i;
    while (j < wedges.size() && wedges[j] == wedges[i]) ++j;
    total = chk::checked_add(total,
                             chk::checked_choose2(static_cast<count_t>(j - i)));
    i = j;
  }
  return total;
}

count_t batch_hash(const graph::BipartiteGraph& g, count_t max_wedges) {
  const Plan plan = plan_for(g);
  check_budget(plan.wedges, max_wedges);

  std::unordered_map<std::uint64_t, count_t> groups;
  groups.reserve(static_cast<std::size_t>(plan.wedges));
  const auto& wp = *plan.wedge_points;
  for (vidx_t v = 0; v < wp.rows(); ++v) {
    const auto ends = wp.row(v);
    for (std::size_t i = 0; i < ends.size(); ++i)
      for (std::size_t j = i + 1; j < ends.size(); ++j)
        ++groups[pack(ends[i], ends[j])];
  }

  count_t total = 0;
  for (const auto& [key, n] : groups) {
    (void)key;
    total = chk::checked_add(total, chk::checked_choose2(n));
  }
  return total;
}

}  // namespace bfc::count
