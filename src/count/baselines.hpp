// Baseline butterfly counters from the literature the paper builds on:
//  - exhaustive wedge aggregation per vertex pair (Wang et al. 2014 [14]),
//  - vertex-priority counting (Wang et al. VLDB'19 [15]),
//  - batched wedge enumeration with sort/hash semisort aggregation
//    (ParButterfly, Shi & Shun [12]).
// They cross-validate the linear-algebra family and serve as comparison
// points in bench/baselines_compare.
#pragma once

#include "graph/bipartite_graph.hpp"
#include "util/common.hpp"

namespace bfc::count {

/// Σ_{i<j∈V1} C(|N(i)∩N(j)|, 2) via per-row wedge accumulation. Cost
/// O(Σ_{v∈V2} deg(v)²).
[[nodiscard]] count_t wedge_reference_v1(const graph::BipartiteGraph& g);

/// Same from the V2 side. Cost O(Σ_{u∈V1} deg(u)²).
[[nodiscard]] count_t wedge_reference_v2(const graph::BipartiteGraph& g);

/// Picks whichever side has the cheaper wedge sum — the library's default
/// exact reference counter.
[[nodiscard]] count_t wedge_reference(const graph::BipartiteGraph& g);

/// Vertex-priority counting over the unified vertex set with degree-based
/// ranks: every butterfly is charged to its highest-priority vertex, so
/// high-degree hubs never fan out. The strongest sequential baseline.
[[nodiscard]] count_t vertex_priority(const graph::BipartiteGraph& g);

/// ParButterfly-style batch counting: materialise every wedge keyed by its
/// endpoint pair, aggregate, then Σ C(group, 2). `sort` variant uses a
/// global sort, `hash` a hash-map semisort. Throws std::length_error if the
/// wedge list would exceed `max_wedges`.
[[nodiscard]] count_t batch_sort(const graph::BipartiteGraph& g,
                                 count_t max_wedges = count_t{1} << 31);
[[nodiscard]] count_t batch_hash(const graph::BipartiteGraph& g,
                                 count_t max_wedges = count_t{1} << 31);

}  // namespace bfc::count
