// Incremental butterfly counting under edge insertions and deletions. The
// works the paper builds on study counting under situational constraints
// (§I); the streaming/dynamic setting is the natural companion: after
// inserting edge (u, v), the count grows by exactly the number of
// butterflies the new edge completes — its support in the post-insertion
// graph — and symmetrically for deletions. Each update costs
// O(Σ_{w ∈ N(v)} min(deg u, deg w)) adjacency intersections, no recount.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "graph/bipartite_graph.hpp"
#include "util/common.hpp"

namespace bfc::count {

class DynamicButterflyCounter {
 public:
  /// Empty graph over fixed vertex sets.
  DynamicButterflyCounter(vidx_t n1, vidx_t n2);

  [[nodiscard]] vidx_t n1() const noexcept { return n1_; }
  [[nodiscard]] vidx_t n2() const noexcept { return n2_; }
  [[nodiscard]] offset_t edge_count() const noexcept { return edges_; }

  /// Current exact butterfly count.
  [[nodiscard]] count_t butterflies() const noexcept { return butterflies_; }

  [[nodiscard]] bool has_edge(vidx_t u, vidx_t v) const;

  /// Inserts (u, v); returns the number of butterflies created (0 if the
  /// edge already exists).
  count_t insert(vidx_t u, vidx_t v);

  /// Removes (u, v); returns the number of butterflies destroyed (0 if the
  /// edge does not exist).
  count_t remove(vidx_t u, vidx_t v);

  /// Neighbours of a V1 / V2 vertex, sorted ascending. The span is
  /// invalidated by the next insert/remove touching that vertex.
  [[nodiscard]] std::span<const vidx_t> neighbors_v1(vidx_t u) const;
  [[nodiscard]] std::span<const vidx_t> neighbors_v2(vidx_t v) const;

  /// Materialises the current graph as an immutable BipartiteGraph (CSR +
  /// CSC). O(|E|): the sorted adjacency vectors are the CSR rows already,
  /// so this is a concatenation plus one transpose — the snapshot-publish
  /// path of the serving layer (src/svc/).
  [[nodiscard]] graph::BipartiteGraph to_graph() const;

 private:
  /// Butterflies containing edge (u, v) given both adjacency lists current
  /// and the edge present: Σ_{w∈N(v)\{u}} (|N(u)∩N(w)| − 1).
  [[nodiscard]] count_t support_of(vidx_t u, vidx_t v) const;

  vidx_t n1_;
  vidx_t n2_;
  offset_t edges_ = 0;
  count_t butterflies_ = 0;
  // Sorted adjacency vectors: O(deg) insert/erase by shifting, but contiguous
  // memory makes the intersection walks (the dominant cost) cache-friendly,
  // and a galloping probe handles the skewed |N(u)| ≪ |N(w)| case in
  // O(min · log(max/min)) instead of the std::set version's pointer chasing.
  std::vector<std::vector<vidx_t>> adj_v1_;  // u -> { v }, ascending
  std::vector<std::vector<vidx_t>> adj_v2_;  // v -> { u }, ascending
};

}  // namespace bfc::count
