// Bounded-workspace butterfly counting, modelling the space- and I/O-
// constrained variants of Wang et al. [14] the paper's introduction
// describes ("minimize the amount of work space needed", "reduce the I/O
// cost"). The counter never materialises the full wedge multiset: wedges
// are generated in batches of at most `batch_wedges`, each batch is sorted
// and aggregated in place, and partially-aggregated endpoint-pair groups
// are carried across batch boundaries. Peak extra memory is
// O(batch_wedges) regardless of Σ deg², at the price of re-sorting per
// batch — the classic space/time trade the cited variants make.
#pragma once

#include "graph/bipartite_graph.hpp"
#include "util/common.hpp"

namespace bfc::count {

struct BoundedMemoryStats {
  count_t butterflies = 0;
  count_t total_wedges = 0;
  std::int64_t batches = 0;
  std::int64_t peak_batch_entries = 0;  // max live entries in one batch
};

/// Exact count with wedge workspace capped at `batch_wedges` entries
/// (16 bytes each). Wedges are enumerated grouped by endpoint pair, so a
/// group can only straddle one batch boundary; the straddling group's
/// partial count is carried over, keeping the result exact.
[[nodiscard]] BoundedMemoryStats count_bounded_memory(
    const graph::BipartiteGraph& g, std::int64_t batch_wedges);

}  // namespace bfc::count
