// OpenMP-parallel counterparts of the reference counter and the local
// (per-vertex / per-edge) counts. Rows of the wedge expansion are
// independent, so they distribute over threads with per-thread dense
// accumulators — the same decomposition the paper's Fig. 11 experiment
// applies to the counting loops.
#pragma once

#include "graph/bipartite_graph.hpp"
#include "util/common.hpp"

namespace bfc::count {

/// Parallel Σ_{i<j} C(|N(i)∩N(j)|, 2) from the cheaper side.
[[nodiscard]] count_t wedge_reference_parallel(const graph::BipartiteGraph& g,
                                               int threads);

/// Parallel butterflies-per-V1-vertex (equals butterflies_per_v1).
[[nodiscard]] std::vector<count_t> butterflies_per_v1_parallel(
    const graph::BipartiteGraph& g, int threads);

/// Parallel butterflies-per-V2-vertex.
[[nodiscard]] std::vector<count_t> butterflies_per_v2_parallel(
    const graph::BipartiteGraph& g, int threads);

/// Parallel per-edge support in CSR order (equals support_per_edge).
[[nodiscard]] std::vector<count_t> support_per_edge_parallel(
    const graph::BipartiteGraph& g, int threads);

}  // namespace bfc::count
