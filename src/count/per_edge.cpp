#include "chk/checked_math.hpp"
#include "count/local_counts.hpp"

namespace bfc::count {

std::vector<count_t> support_per_edge(const graph::BipartiteGraph& g) {
  return support_per_edge(g, CancelToken{});
}

std::vector<count_t> support_per_edge(const graph::BipartiteGraph& g,
                                      const CancelToken& cancel) {
  const auto& a = g.csr();
  const auto& at = g.csc();
  std::vector<count_t> support(static_cast<std::size_t>(a.nnz()), 0);

  // For each u: acc[w] = |N(u) ∩ N(w)| for every V1 vertex w sharing a
  // neighbour with u; then each edge (u, v) reads Σ_{w∈N(v)} acc[w].
  std::vector<count_t> acc(static_cast<std::size_t>(a.rows()), 0);
  std::vector<vidx_t> touched;

  offset_t edge_id = 0;
  for (vidx_t u = 0; u < a.rows(); ++u) {
    // Per-row cancellation point (the wing pass of deadline-bearing
    // queries); acc is cleared below before the next row, so abandoning
    // here leaks no partial state.
    cancel.checkpoint("support_per_edge");
    touched.clear();
    for (const vidx_t k : a.row(u)) {
      for (const vidx_t w : at.row(k)) {
        if (acc[static_cast<std::size_t>(w)] == 0) touched.push_back(w);
        ++acc[static_cast<std::size_t>(w)];
      }
    }
    // acc[u] = deg(u) is included; Eq. (23) removes it via the −deg(u) term.
    const count_t deg_u = a.row_degree(u);
    for (const vidx_t v : a.row(u)) {
      count_t wedge_sum = 0;
      for (const vidx_t w : at.row(v))
        wedge_sum =
            chk::checked_add(wedge_sum, acc[static_cast<std::size_t>(w)]);
      const count_t deg_v = at.row_degree(v);
      support[static_cast<std::size_t>(edge_id)] =
          wedge_sum - deg_u - deg_v + 1;
      ++edge_id;
    }
    for (const vidx_t w : touched) acc[static_cast<std::size_t>(w)] = 0;
  }
  return support;
}

}  // namespace bfc::count
