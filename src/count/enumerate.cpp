#include "count/enumerate.hpp"

#include <algorithm>
#include <stdexcept>

#include "sparse/ops.hpp"

namespace bfc::count {
namespace {

/// Common neighbours of rows u1 and u2 (sorted) via merge.
std::vector<vidx_t> common_neighbors(const sparse::CsrPattern& a, vidx_t u1,
                                     vidx_t u2) {
  const auto r1 = a.row(u1);
  const auto r2 = a.row(u2);
  std::vector<vidx_t> out;
  std::size_t i = 0, j = 0;
  while (i < r1.size() && j < r2.size()) {
    if (r1[i] < r2[j]) {
      ++i;
    } else if (r2[j] < r1[i]) {
      ++j;
    } else {
      out.push_back(r1[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

/// Emits all C(common, 2) butterflies of the pair (u1 < u2).
bool emit_pair(const sparse::CsrPattern& a, vidx_t u1, vidx_t u2,
               count_t& count,
               const std::function<bool(const Butterfly&)>& visit) {
  const std::vector<vidx_t> common = common_neighbors(a, u1, u2);
  for (std::size_t i = 0; i < common.size(); ++i) {
    for (std::size_t j = i + 1; j < common.size(); ++j) {
      ++count;
      if (!visit({u1, u2, common[i], common[j]})) return false;
    }
  }
  return true;
}

}  // namespace

count_t for_each_butterfly(
    const graph::BipartiteGraph& g,
    const std::function<bool(const Butterfly&)>& visit) {
  const auto& a = g.csr();
  const auto& at = g.csc();
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(g.n1()), 0);
  std::vector<vidx_t> partners;
  count_t count = 0;

  for (vidx_t u1 = 0; u1 < g.n1(); ++u1) {
    // Partners u2 > u1 sharing at least one neighbour, each taken once and
    // in ascending order for lexicographic output.
    partners.clear();
    for (const vidx_t v : a.row(u1)) {
      for (const vidx_t u2 : at.row(v)) {
        if (u2 <= u1 || seen[static_cast<std::size_t>(u2)]) continue;
        seen[static_cast<std::size_t>(u2)] = 1;
        partners.push_back(u2);
      }
    }
    std::sort(partners.begin(), partners.end());
    for (const vidx_t u2 : partners) seen[static_cast<std::size_t>(u2)] = 0;
    for (const vidx_t u2 : partners)
      if (!emit_pair(a, u1, u2, count, visit)) return count;
  }
  return count;
}

std::vector<Butterfly> enumerate_butterflies(const graph::BipartiteGraph& g,
                                             count_t limit) {
  require(limit >= 0, "enumerate_butterflies: negative limit");
  std::vector<Butterfly> out;
  bool overflowed = false;
  for_each_butterfly(g, [&](const Butterfly& b) {
    if (static_cast<count_t>(out.size()) >= limit) {
      overflowed = true;
      return false;
    }
    out.push_back(b);
    return true;
  });
  if (overflowed)
    throw std::length_error("enumerate_butterflies: more than " +
                            std::to_string(limit) + " butterflies");
  return out;
}

std::vector<Butterfly> butterflies_containing_v1(
    const graph::BipartiteGraph& g, vidx_t u, count_t limit) {
  require(u >= 0 && u < g.n1(), "butterflies_containing_v1: vertex range");
  const auto& a = g.csr();
  const auto& at = g.csc();
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(g.n1()), 0);
  std::vector<vidx_t> partners;
  for (const vidx_t v : a.row(u)) {
    for (const vidx_t j : at.row(v)) {
      if (j == u || seen[static_cast<std::size_t>(j)]) continue;
      seen[static_cast<std::size_t>(j)] = 1;
      partners.push_back(j);
    }
  }
  std::sort(partners.begin(), partners.end());

  std::vector<Butterfly> out;
  count_t count = 0;
  for (const vidx_t j : partners) {
    const vidx_t u1 = std::min(u, j);
    const vidx_t u2 = std::max(u, j);
    emit_pair(a, u1, u2, count, [&](const Butterfly& b) {
      if (static_cast<count_t>(out.size()) >= limit)
        throw std::length_error("butterflies_containing_v1: limit exceeded");
      out.push_back(b);
      return true;
    });
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bfc::count
