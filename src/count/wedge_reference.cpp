#include "count/baselines.hpp"
#include "chk/checked_math.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm.hpp"

namespace bfc::count {
namespace {

count_t wedge_work(const sparse::CsrPattern& wedge_point_side) {
  count_t work = 0;
  for (vidx_t v = 0; v < wedge_point_side.rows(); ++v) {
    const count_t d = wedge_point_side.row_degree(v);
    work = chk::checked_add(work, chk::checked_mul(d, d));
  }
  return work;
}

}  // namespace

count_t wedge_reference_v1(const graph::BipartiteGraph& g) {
  // Endpoint pairs in V1, wedge points in V2: expand rows of A through Aᵀ.
  return sparse::gram_pairwise_butterflies(g.csr(), g.csc());
}

count_t wedge_reference_v2(const graph::BipartiteGraph& g) {
  return sparse::gram_pairwise_butterflies(g.csc(), g.csr());
}

count_t wedge_reference(const graph::BipartiteGraph& g) {
  // Wedge expansion from the V1 side walks every wedge whose point is in
  // V2 (cost Σ_{v∈V2} deg²) and vice versa; take the cheaper side.
  const count_t cost_v1_side = wedge_work(g.csc());
  const count_t cost_v2_side = wedge_work(g.csr());
  return cost_v1_side <= cost_v2_side ? wedge_reference_v1(g)
                                      : wedge_reference_v2(g);
}

}  // namespace bfc::count
