// Pairwise hot-spot queries: the vertex pairs connected by the most wedges
// (largest B_ij entries) and the pairs spanning the most butterflies
// (largest C(B_ij, 2)). These are the "dense region" primitives the paper's
// introduction motivates butterflies with — a 2×k biclique is exactly a
// pair with k common neighbours.
#pragma once

#include <vector>

#include "graph/bipartite_graph.hpp"
#include "util/common.hpp"

namespace bfc::count {

struct VertexPair {
  vidx_t a = 0;        // first vertex (a < b), in the chosen vertex set
  vidx_t b = 0;
  count_t wedges = 0;  // |N(a) ∩ N(b)|
  bool operator==(const VertexPair& other) const = default;
  [[nodiscard]] count_t butterflies() const noexcept {
    return choose2(wedges);
  }
};

/// The strict order every top-pair query ranks by: wedges descending, ties
/// by lexicographic (a, b). Exposed (rather than private to the kernel) so
/// the sharded scatter-gather merge sorts its candidate union in exactly
/// the order the single-store kernel would have produced.
[[nodiscard]] constexpr bool pair_order(const VertexPair& x,
                                        const VertexPair& y) noexcept {
  if (x.wedges != y.wedges) return x.wedges > y.wedges;
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

/// The k V1-pairs with the largest common-neighbourhood size, descending
/// (ties by lexicographic pair). Cost O(Σ wedges + P log k) where P is the
/// number of connected pairs.
[[nodiscard]] std::vector<VertexPair> top_wedge_pairs_v1(
    const graph::BipartiteGraph& g, std::size_t k);

/// Same over V2 pairs.
[[nodiscard]] std::vector<VertexPair> top_wedge_pairs_v2(
    const graph::BipartiteGraph& g, std::size_t k);

/// The maximum 2×c biclique: the best pair and its full common
/// neighbourhood (empty when no pair shares ≥ 2 neighbours).
struct Biclique2 {
  vidx_t a = 0, b = 0;          // the V1 pair
  std::vector<vidx_t> columns;  // common neighbourhood in V2
};
[[nodiscard]] Biclique2 max_biclique_2xk(const graph::BipartiteGraph& g);

}  // namespace bfc::count
