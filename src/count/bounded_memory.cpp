#include "count/bounded_memory.hpp"
#include "chk/checked_math.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <queue>
#include <stdexcept>
#include <vector>

namespace bfc::count {
namespace {

/// One aggregated (endpoint-pair key, wedge count) record of a sorted run.
struct RunEntry {
  std::uint64_t key;
  count_t count;
};

/// Sorted run spilled to a temporary file — the "disk" of the modelled
/// external-memory setting. tmpfile() unlinks automatically.
class SpilledRun {
 public:
  explicit SpilledRun(const std::vector<RunEntry>& entries)
      : file_(std::tmpfile()) {
    if (file_ == nullptr)
      throw std::runtime_error("bounded-memory counter: tmpfile() failed");
    if (!entries.empty() &&
        std::fwrite(entries.data(), sizeof(RunEntry), entries.size(),
                    file_.get()) != entries.size())
      throw std::runtime_error("bounded-memory counter: spill write failed");
    std::rewind(file_.get());
  }

  /// Refills the read buffer; returns false at end of run.
  bool next(RunEntry& out) {
    if (pos_ == buffer_.size()) {
      buffer_.resize(kReadChunk);
      const std::size_t got = std::fread(buffer_.data(), sizeof(RunEntry),
                                         kReadChunk, file_.get());
      buffer_.resize(got);
      pos_ = 0;
      if (got == 0) return false;
    }
    out = buffer_[pos_++];
    return true;
  }

 private:
  static constexpr std::size_t kReadChunk = 4096;
  struct FileCloser {
    void operator()(std::FILE* f) const noexcept {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, FileCloser> file_;
  std::vector<RunEntry> buffer_;
  std::size_t pos_ = 0;
};

/// Sorts a raw wedge batch and collapses equal keys.
std::vector<RunEntry> aggregate_batch(std::vector<std::uint64_t>& batch) {
  std::sort(batch.begin(), batch.end());
  std::vector<RunEntry> run;
  for (std::size_t i = 0; i < batch.size();) {
    std::size_t j = i;
    while (j < batch.size() && batch[j] == batch[i]) ++j;
    run.push_back({batch[i], static_cast<count_t>(j - i)});
    i = j;
  }
  batch.clear();
  return run;
}

std::uint64_t pack(vidx_t i, vidx_t j) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)) << 32) |
         static_cast<std::uint32_t>(j);
}

}  // namespace

BoundedMemoryStats count_bounded_memory(const graph::BipartiteGraph& g,
                                        std::int64_t batch_wedges) {
  require(batch_wedges >= 2, "count_bounded_memory: batch must hold >= 2");
  BoundedMemoryStats stats;

  // Enumerate from whichever side generates fewer wedges, like the exact
  // batch counters.
  count_t via_v2 = 0, via_v1 = 0;
  for (vidx_t v = 0; v < g.n2(); ++v)
    via_v2 = chk::checked_add(via_v2, chk::checked_choose2(g.csc().row_degree(v)));
  for (vidx_t u = 0; u < g.n1(); ++u)
    via_v1 = chk::checked_add(via_v1, chk::checked_choose2(g.csr().row_degree(u)));
  const sparse::CsrPattern& wp = via_v2 <= via_v1 ? g.csc() : g.csr();
  stats.total_wedges = std::min(via_v2, via_v1);

  std::vector<std::uint64_t> batch;
  batch.reserve(static_cast<std::size_t>(batch_wedges));
  std::vector<SpilledRun> runs;

  auto flush = [&] {
    if (batch.empty()) return;
    stats.peak_batch_entries = std::max(
        stats.peak_batch_entries, static_cast<std::int64_t>(batch.size()));
    ++stats.batches;
    runs.emplace_back(aggregate_batch(batch));
  };

  for (vidx_t v = 0; v < wp.rows(); ++v) {
    const auto ends = wp.row(v);
    for (std::size_t i = 0; i < ends.size(); ++i) {
      for (std::size_t j = i + 1; j < ends.size(); ++j) {
        if (static_cast<std::int64_t>(batch.size()) == batch_wedges) flush();
        batch.push_back(pack(ends[i], ends[j]));
      }
    }
  }
  flush();

  // K-way merge of the sorted runs, accumulating each key's total wedge
  // count across runs before applying C(n, 2).
  struct HeapItem {
    RunEntry entry;
    std::size_t run;
    bool operator>(const HeapItem& other) const {
      return entry.key > other.entry.key;
    }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    RunEntry e{};
    if (runs[r].next(e)) heap.push({e, r});
  }

  bool have_current = false;
  std::uint64_t current_key = 0;
  count_t current_count = 0;
  while (!heap.empty()) {
    const HeapItem top = heap.top();
    heap.pop();
    if (have_current && top.entry.key != current_key) {
      stats.butterflies =
          chk::checked_add(stats.butterflies, chk::checked_choose2(current_count));
      current_count = 0;
    }
    have_current = true;
    current_key = top.entry.key;
    current_count = chk::checked_add(current_count, top.entry.count);
    RunEntry e{};
    if (runs[top.run].next(e)) heap.push({e, top.run});
  }
  if (have_current)
    stats.butterflies =
        chk::checked_add(stats.butterflies, chk::checked_choose2(current_count));
  return stats;
}

}  // namespace bfc::count
