#include "count/approx.hpp"

#include "chk/checked_math.hpp"

#include <algorithm>
#include <cmath>

#include "gen/discrete_sampler.hpp"
#include "sparse/ops.hpp"
#include "util/rng.hpp"

namespace bfc::count {
namespace {

/// Point estimate and standard error from per-sample values x_i, where the
/// estimator of Ξ is mean(x)·scale.
ApproxResult finalize(const std::vector<double>& x, double scale) {
  ApproxResult r;
  r.samples = static_cast<std::int64_t>(x.size());
  if (x.empty()) return r;
  double mean = 0.0;
  for (const double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  double var = 0.0;
  for (const double v : x) var += (v - mean) * (v - mean);
  var = x.size() > 1 ? var / static_cast<double>(x.size() - 1) : 0.0;
  r.estimate = mean * scale;
  r.standard_error =
      std::sqrt(var / static_cast<double>(x.size())) * scale;
  return r;
}

/// Butterflies containing V1 vertex u: Σ_{j≠u} C(|N(u)∩N(j)|, 2) by wedge
/// expansion with a dense accumulator.
count_t butterflies_at_vertex(const graph::BipartiteGraph& g, vidx_t u,
                              std::vector<count_t>& acc,
                              std::vector<vidx_t>& touched) {
  touched.clear();
  for (const vidx_t k : g.csr().row(u)) {
    for (const vidx_t j : g.csc().row(k)) {
      if (j == u) continue;
      if (acc[static_cast<std::size_t>(j)] == 0) touched.push_back(j);
      ++acc[static_cast<std::size_t>(j)];
    }
  }
  count_t total = 0;
  for (const vidx_t j : touched) {
    total = chk::checked_add(total, choose2(acc[static_cast<std::size_t>(j)]));
    acc[static_cast<std::size_t>(j)] = 0;
  }
  return total;
}

}  // namespace

ApproxResult approx_vertex_sampling(const graph::BipartiteGraph& g,
                                    const ApproxOptions& options) {
  require(options.samples >= 1, "approx: samples must be >= 1");
  if (g.n1() == 0) return {};
  Rng rng(options.seed);
  std::vector<count_t> acc(static_cast<std::size_t>(g.n1()), 0);
  std::vector<vidx_t> touched;
  std::vector<double> x;
  x.reserve(static_cast<std::size_t>(options.samples));
  for (std::int64_t s = 0; s < options.samples; ++s) {
    const auto u = static_cast<vidx_t>(
        rng.bounded(static_cast<std::uint64_t>(g.n1())));
    x.push_back(
        static_cast<double>(butterflies_at_vertex(g, u, acc, touched)));
  }
  // E[x] = 2Ξ/|V1|  ->  Ξ = mean·|V1|/2.
  return finalize(x, static_cast<double>(g.n1()) / 2.0);
}

ApproxResult approx_edge_sampling(const graph::BipartiteGraph& g,
                                  const ApproxOptions& options) {
  require(options.samples >= 1, "approx: samples must be >= 1");
  const offset_t m = g.edge_count();
  if (m == 0) return {};
  Rng rng(options.seed);
  const auto& a = g.csr();
  const auto& at = g.csc();
  const auto& row_ptr = a.row_ptr();

  std::vector<double> x;
  x.reserve(static_cast<std::size_t>(options.samples));
  for (std::int64_t s = 0; s < options.samples; ++s) {
    const auto e =
        static_cast<offset_t>(rng.bounded(static_cast<std::uint64_t>(m)));
    // Recover (u, v) for CSR entry e.
    const auto it =
        std::upper_bound(row_ptr.begin(), row_ptr.end(), e) - 1;
    const auto u = static_cast<vidx_t>(it - row_ptr.begin());
    const vidx_t v = a.col_idx()[static_cast<std::size_t>(e)];

    // Eq. (23): support = Σ_{w∈N(v)} |N(u)∩N(w)| − deg(u) − deg(v) + 1.
    count_t wedge_sum = 0;
    for (const vidx_t w : at.row(v))
      wedge_sum = chk::checked_add(
          wedge_sum, sparse::intersection_size(a.row(u), a.row(w)));
    x.push_back(static_cast<double>(wedge_sum - a.row_degree(u) -
                                    at.row_degree(v) + 1));
  }
  // E[x] = 4Ξ/|E|  ->  Ξ = mean·|E|/4.
  return finalize(x, static_cast<double>(m) / 4.0);
}

ApproxResult approx_wedge_sampling(const graph::BipartiteGraph& g,
                                   const ApproxOptions& options) {
  require(options.samples >= 1, "approx: samples must be >= 1");
  const auto& at = g.csc();
  std::vector<double> weights(static_cast<std::size_t>(g.n2()));
  count_t total_wedges = 0;
  for (vidx_t w = 0; w < g.n2(); ++w) {
    const count_t c = choose2(at.row_degree(w));
    weights[static_cast<std::size_t>(w)] = static_cast<double>(c);
    total_wedges = chk::checked_add(total_wedges, c);
  }
  if (total_wedges == 0) return {};

  gen::DiscreteSampler wedge_points(weights);
  Rng rng(options.seed);
  std::vector<double> x;
  x.reserve(static_cast<std::size_t>(options.samples));
  for (std::int64_t s = 0; s < options.samples; ++s) {
    const vidx_t w = wedge_points.sample(rng);
    const auto ends = at.row(w);
    // Uniform distinct endpoint pair.
    const auto i = static_cast<std::size_t>(rng.bounded(ends.size()));
    auto j = static_cast<std::size_t>(rng.bounded(ends.size() - 1));
    if (j >= i) ++j;
    const count_t common = sparse::intersection_size(
        g.csr().row(ends[i]), g.csr().row(ends[j]));
    x.push_back(static_cast<double>(common - 1));
  }
  // E[x] = 2Ξ/W  ->  Ξ = mean·W/2.
  return finalize(x, static_cast<double>(total_wedges) / 2.0);
}

namespace {

/// Shared implementation of the per-vertex tip estimator over (lines,
/// lines_t) — (CSR, CSC) for a V1 anchor, swapped for a V2 anchor.
ApproxResult approx_tip_at(const sparse::CsrPattern& lines,
                           const sparse::CsrPattern& lines_t, vidx_t anchor,
                           const ApproxOptions& options) {
  require(options.samples >= 1, "approx: samples must be >= 1");
  require(anchor >= 0 && anchor < lines.rows(),
          "approx_tip: vertex out of range");
  const std::span<const vidx_t> nu = lines.row(anchor);

  // W_u = Σ_{k∈N(u)} (deg k − 1): the wedges anchored at u. Midpoints of
  // degree 1 close no wedge and get weight 0.
  std::vector<double> weights(nu.size());
  count_t total_wedges = 0;
  for (std::size_t i = 0; i < nu.size(); ++i) {
    const count_t c = lines_t.row_degree(nu[i]) - 1;
    weights[i] = static_cast<double>(c);
    total_wedges = chk::checked_add(total_wedges, c);
  }
  if (total_wedges == 0) return {};  // isolated or wedge-free: exactly 0

  gen::DiscreteSampler midpoints(weights);
  Rng rng(options.seed);
  std::vector<double> x;
  x.reserve(static_cast<std::size_t>(options.samples));
  for (std::int64_t s = 0; s < options.samples; ++s) {
    const vidx_t k = nu[static_cast<std::size_t>(midpoints.sample(rng))];
    const std::span<const vidx_t> ends = lines_t.row(k);
    // Uniform far endpoint j ≠ u. The row is sorted, so skip over u's slot
    // instead of rejection-sampling.
    const auto pos = static_cast<std::size_t>(
        std::lower_bound(ends.begin(), ends.end(), anchor) - ends.begin());
    auto j_idx = static_cast<std::size_t>(rng.bounded(ends.size() - 1));
    if (j_idx >= pos) ++j_idx;
    const count_t common =
        sparse::intersection_size(nu, lines.row(ends[j_idx]));
    x.push_back(static_cast<double>(common - 1));
  }
  // Per sampled wedge, E[x] = Σ_j (w_uj/W_u)(w_uj − 1) = 2·B_u/W_u, so
  // B_u = mean·W_u/2 — the wedge-sampling argument localised at u.
  return finalize(x, static_cast<double>(total_wedges) / 2.0);
}

}  // namespace

ApproxResult approx_tip_v1(const graph::BipartiteGraph& g, vidx_t u,
                           const ApproxOptions& options) {
  return approx_tip_at(g.csr(), g.csc(), u, options);
}

ApproxResult approx_tip_v2(const graph::BipartiteGraph& g, vidx_t v,
                           const ApproxOptions& options) {
  return approx_tip_at(g.csc(), g.csr(), v, options);
}

}  // namespace bfc::count
