#include "count/top_pairs.hpp"

#include <algorithm>
#include <iterator>
#include <queue>

#include "sparse/ops.hpp"

namespace bfc::count {
namespace {

/// Keeps the k best pairs while streaming all connected pairs of the rows
/// of `lines` (transpose in `lines_t`).
std::vector<VertexPair> top_pairs(const sparse::CsrPattern& lines,
                                  const sparse::CsrPattern& lines_t,
                                  std::size_t k) {
  if (k == 0) return {};
  auto better = [](const VertexPair& x, const VertexPair& y) {
    return pair_order(x, y);
  };
  // Min-heap of the current best k under `better`.
  auto heap_cmp = [&](const VertexPair& x, const VertexPair& y) {
    return better(x, y);
  };
  std::priority_queue<VertexPair, std::vector<VertexPair>,
                      decltype(heap_cmp)>
      heap(heap_cmp);

  const vidx_t n = lines.rows();
  std::vector<count_t> acc(static_cast<std::size_t>(n), 0);
  std::vector<vidx_t> touched;
  for (vidx_t i = 0; i < n; ++i) {
    touched.clear();
    for (const vidx_t x : lines.row(i)) {
      for (const vidx_t j : lines_t.row(x)) {
        if (j <= i) continue;
        if (acc[static_cast<std::size_t>(j)] == 0) touched.push_back(j);
        ++acc[static_cast<std::size_t>(j)];
      }
    }
    for (const vidx_t j : touched) {
      const VertexPair candidate{i, j, acc[static_cast<std::size_t>(j)]};
      acc[static_cast<std::size_t>(j)] = 0;
      if (heap.size() < k) {
        heap.push(candidate);
      } else if (better(candidate, heap.top())) {
        heap.pop();
        heap.push(candidate);
      }
    }
  }

  std::vector<VertexPair> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  std::sort(out.begin(), out.end(), better);
  return out;
}

}  // namespace

std::vector<VertexPair> top_wedge_pairs_v1(const graph::BipartiteGraph& g,
                                           std::size_t k) {
  return top_pairs(g.csr(), g.csc(), k);
}

std::vector<VertexPair> top_wedge_pairs_v2(const graph::BipartiteGraph& g,
                                           std::size_t k) {
  return top_pairs(g.csc(), g.csr(), k);
}

Biclique2 max_biclique_2xk(const graph::BipartiteGraph& g) {
  const auto best = top_wedge_pairs_v1(g, 1);
  Biclique2 result;
  if (best.empty() || best[0].wedges < 2) return result;
  result.a = best[0].a;
  result.b = best[0].b;
  const auto ra = g.csr().row(result.a);
  const auto rb = g.csr().row(result.b);
  std::set_intersection(ra.begin(), ra.end(), rb.begin(), rb.end(),
                        std::back_inserter(result.columns));
  return result;
}

}  // namespace bfc::count
