#include "graph/io_edgelist.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "chk/validate.hpp"
#include "sparse/coo.hpp"
#include "util/timer.hpp"

namespace bfc::graph {

BipartiteGraph read_edgelist(std::istream& in, vidx_t n1, vidx_t n2,
                             const std::string& source) {
  BFC_TRACE_SCOPE("graph.read_edgelist");
  const Timer parse_timer;
  std::vector<std::pair<vidx_t, vidx_t>> edges;
  vidx_t max_u = 0;
  vidx_t max_v = 0;

  std::string line;
  std::size_t lineno = 0;
  const auto fail = [&](const std::string& what) {
    return std::runtime_error("edgelist " + source + ":" +
                              std::to_string(lineno) + ": " + what);
  };
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '%' || line[first] == '#') continue;

    std::istringstream fields(line);
    long long u = 0, v = 0;
    if (!(fields >> u >> v)) throw fail("malformed line: " + line);
    if (u < 1 || v < 1) throw fail("ids must be 1-based positive");
    const auto u0 = static_cast<vidx_t>(u - 1);
    const auto v0 = static_cast<vidx_t>(v - 1);
    max_u = std::max(max_u, static_cast<vidx_t>(u0 + 1));
    max_v = std::max(max_v, static_cast<vidx_t>(v0 + 1));
    edges.emplace_back(u0, v0);
  }

  const vidx_t rows = n1 > 0 ? n1 : max_u;
  const vidx_t cols = n2 > 0 ? n2 : max_v;
  require(rows >= max_u && cols >= max_v,
          "edgelist " + source + ": forced dimensions smaller than ids present");
  BFC_COUNT_ADD("graph.io.lines_read", static_cast<std::int64_t>(lineno));
  BFC_COUNT_ADD("graph.io.edges_read", static_cast<std::int64_t>(edges.size()));
  BFC_GAUGE_SET("graph.io.parse_seconds", parse_timer.seconds());
  BipartiteGraph g = BipartiteGraph::from_edges(rows, cols, edges);
  BFC_VALIDATE(g);
  return g;
}

BipartiteGraph load_edgelist(const std::string& path, vidx_t n1, vidx_t n2) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open edge list: " + path);
  return read_edgelist(in, n1, n2, path);
}

void write_edgelist(std::ostream& out, const BipartiteGraph& g) {
  out << "% bip " << g.n1() << ' ' << g.n2() << ' ' << g.edge_count() << '\n';
  const auto& a = g.csr();
  for (vidx_t u = 0; u < a.rows(); ++u)
    for (const vidx_t v : a.row(u)) out << (u + 1) << ' ' << (v + 1) << '\n';
}

void save_edgelist(const std::string& path, const BipartiteGraph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write edge list: " + path);
  write_edgelist(out, g);
}

}  // namespace bfc::graph
