#include "graph/bipartite_graph.hpp"

#include "chk/validate.hpp"
#include "sparse/coo.hpp"

namespace bfc::graph {

BipartiteGraph::BipartiteGraph(sparse::CsrPattern biadjacency)
    : a_(std::move(biadjacency)), at_(a_.transpose()) {
  // Every graph in the system funnels through this constructor, so in a
  // checked build verify the freshly built CSR/CSC pair actually mirror
  // each other (each pattern was already shape-checked on construction).
  if constexpr (chk::kCheckedEnabled) chk::validate_mirror(a_, at_);
}

BipartiteGraph BipartiteGraph::from_edges(
    vidx_t n1, vidx_t n2,
    const std::vector<std::pair<vidx_t, vidx_t>>& edge_list) {
  sparse::CooBuilder builder(n1, n2);
  builder.reserve(edge_list.size());
  for (const auto& [u, v] : edge_list) builder.add(u, v);
  return BipartiteGraph(builder.build());
}

BipartiteGraph BipartiteGraph::swapped_sides() const {
  return BipartiteGraph(at_);
}

}  // namespace bfc::graph
