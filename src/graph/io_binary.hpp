// Compact binary snapshot format ("BFC1") so the bench harness can cache
// generated datasets between runs instead of regenerating them. Layout:
// 8-byte magic, then n1, n2 (int32), nnz (int64), row_ptr, col_idx —
// all little-endian host order (the format is a local cache, not an
// interchange format).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/bipartite_graph.hpp"

namespace bfc::graph {

void write_binary(std::ostream& out, const BipartiteGraph& g);
void save_binary(const std::string& path, const BipartiteGraph& g);

[[nodiscard]] BipartiteGraph read_binary(std::istream& in);
[[nodiscard]] BipartiteGraph load_binary(const std::string& path);

}  // namespace bfc::graph
