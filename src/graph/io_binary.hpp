// Compact binary snapshot format ("BFC2") so the bench harness can cache
// generated datasets between runs and the serving layer can persist
// published epochs for warm restarts. Layout (little-endian host order —
// a local cache/persistence format, not an interchange format):
//
//   offset  0  magic "BFC2" + 4 zero bytes
//   offset  8  u32 format version (currently 2)
//   offset 12  u32 CRC-32 of the 16-byte dimension header
//   offset 16  i32 n1, i32 n2, i64 nnz
//   offset 32  u32 CRC-32 of the row_ptr section, then row_ptr[(n1+1)·8]
//          …   u32 CRC-32 of the col_idx section, then col_idx[nnz·4]
//
// Every section is independently checksummed, so a single flipped bit is
// caught before the CSR pattern is even constructed, and truncation at any
// section boundary reports the exact byte offset. save_binary is atomic:
// it writes `<path>.tmp` and renames over the target only after a clean
// flush, so a crash mid-write can never tear an existing snapshot.
//
// Version history: "BFC1" (no version field, no checksums) is detected and
// rejected with a regenerate hint rather than misparsed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/bipartite_graph.hpp"

namespace bfc::graph {

inline constexpr std::uint32_t kBinaryFormatVersion = 2;

void write_binary(std::ostream& out, const BipartiteGraph& g);

/// Atomic: writes `path + ".tmp"`, flushes, then renames onto `path`.
void save_binary(const std::string& path, const BipartiteGraph& g);

/// `source` names the stream in error messages ("<stream>" by default;
/// load_binary passes the file path) so a bad magic / CRC mismatch /
/// truncation says *which* file died and at what byte offset.
[[nodiscard]] BipartiteGraph read_binary(std::istream& in,
                                         const std::string& source =
                                             "<stream>");
[[nodiscard]] BipartiteGraph load_binary(const std::string& path);

}  // namespace bfc::graph
