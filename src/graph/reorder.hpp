// Vertex reordering. The paper's future work (§VI) points at "sorting by
// vertex degrees [3], [12]" as the next optimisation for these algorithms;
// this module provides the degree (and random) relabelings plus the
// machinery to carry results back to original ids. Counting is invariant
// under relabeling, but the unblocked kernels' cost is not: a pivot's peer
// scan touches prefix/suffix column ranges, so hub placement changes the
// measured times (ablation_ordering quantifies it).
#pragma once

#include "graph/bipartite_graph.hpp"
#include "util/common.hpp"

namespace bfc::graph {

enum class Order {
  kDegreeAscending,
  kDegreeDescending,
  kRandom,
};

struct Relabeling {
  BipartiteGraph graph;            // the relabeled graph
  std::vector<vidx_t> v1_old_to_new;
  std::vector<vidx_t> v2_old_to_new;
};

/// Relabels both vertex sets by the requested order (ties broken by
/// original id; kRandom uses `seed`).
[[nodiscard]] Relabeling reorder(const BipartiteGraph& g, Order order,
                                 std::uint64_t seed = 0);

/// Applies explicit permutations (old id -> new id); both must be
/// bijections of the correct size.
[[nodiscard]] BipartiteGraph relabel(const BipartiteGraph& g,
                                     const std::vector<vidx_t>& v1_old_to_new,
                                     const std::vector<vidx_t>& v2_old_to_new);

}  // namespace bfc::graph
