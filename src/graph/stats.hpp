// Structural statistics of a bipartite graph: degree summaries, wedge
// counts, caterpillars (paths of length 3) and the butterfly-based
// clustering coefficient the paper's introduction cites (Wang et al. [15]).
#pragma once

#include <iosfwd>

#include "graph/bipartite_graph.hpp"
#include "util/common.hpp"

namespace bfc::graph {

struct DegreeSummary {
  offset_t min = 0;
  offset_t max = 0;
  double mean = 0.0;
  vidx_t isolated = 0;  // vertices of degree zero
};

[[nodiscard]] DegreeSummary degree_summary_v1(const BipartiteGraph& g);
[[nodiscard]] DegreeSummary degree_summary_v2(const BipartiteGraph& g);

/// Wedges with endpoints in V1 (wedge point in V2): Σ_v C(deg(v), 2).
[[nodiscard]] count_t wedges_v1_endpoints(const BipartiteGraph& g);

/// Wedges with endpoints in V2 (wedge point in V1): Σ_u C(deg(u), 2).
[[nodiscard]] count_t wedges_v2_endpoints(const BipartiteGraph& g);

/// Caterpillars: paths of length 3, Σ_{(u,v)∈E} (deg(u)-1)(deg(v)-1).
[[nodiscard]] count_t caterpillars(const BipartiteGraph& g);

/// Bipartite clustering coefficient 4·Ξ_G / caterpillars (0 when the graph
/// has no caterpillar); the caller supplies the butterfly count Ξ_G.
[[nodiscard]] double clustering_coefficient(const BipartiteGraph& g,
                                            count_t butterflies);

/// Edge density |E| / (|V1|·|V2|).
[[nodiscard]] double density(const BipartiteGraph& g);

/// Degree histogram: entry d is the number of vertices of degree d (length
/// max degree + 1; a single zero entry for an empty vertex set).
[[nodiscard]] std::vector<vidx_t> degree_histogram_v1(const BipartiteGraph& g);
[[nodiscard]] std::vector<vidx_t> degree_histogram_v2(const BipartiteGraph& g);

/// The q-th degree percentile (0 <= q <= 100) of a vertex set, by the
/// nearest-rank definition.
[[nodiscard]] offset_t degree_percentile_v1(const BipartiteGraph& g, double q);
[[nodiscard]] offset_t degree_percentile_v2(const BipartiteGraph& g, double q);

struct GraphSummary {
  vidx_t n1 = 0;
  vidx_t n2 = 0;
  offset_t edges = 0;
  double density = 0.0;
  DegreeSummary deg_v1;
  DegreeSummary deg_v2;
  count_t wedges_v1 = 0;  // endpoints in V1
  count_t wedges_v2 = 0;  // endpoints in V2
  count_t caterpillars = 0;
};

[[nodiscard]] GraphSummary summarize(const BipartiteGraph& g);

std::ostream& operator<<(std::ostream& os, const GraphSummary& s);

}  // namespace bfc::graph
