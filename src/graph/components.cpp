#include "graph/components.hpp"

#include <algorithm>
#include <queue>

#include "sparse/ops.hpp"

namespace bfc::graph {

Components connected_components(const BipartiteGraph& g) {
  Components out;
  out.label_v1.assign(static_cast<std::size_t>(g.n1()), -1);
  out.label_v2.assign(static_cast<std::size_t>(g.n2()), -1);

  // Unified ids: V1 vertex u -> u, V2 vertex v -> n1 + v.
  const vidx_t total = g.n1() + g.n2();
  std::queue<vidx_t> frontier;

  auto label_of = [&](vidx_t x) -> vidx_t& {
    return x < g.n1() ? out.label_v1[static_cast<std::size_t>(x)]
                      : out.label_v2[static_cast<std::size_t>(x - g.n1())];
  };

  for (vidx_t start = 0; start < total; ++start) {
    if (label_of(start) != -1) continue;
    const vidx_t component = out.count++;
    label_of(start) = component;
    frontier.push(start);
    while (!frontier.empty()) {
      const vidx_t x = frontier.front();
      frontier.pop();
      const auto expand = [&](vidx_t neighbor_unified) {
        if (label_of(neighbor_unified) == -1) {
          label_of(neighbor_unified) = component;
          frontier.push(neighbor_unified);
        }
      };
      if (x < g.n1()) {
        for (const vidx_t v : g.neighbors_of_v1(x)) expand(g.n1() + v);
      } else {
        for (const vidx_t u : g.neighbors_of_v2(x - g.n1())) expand(u);
      }
    }
  }

  out.edges_per_component.assign(static_cast<std::size_t>(out.count), 0);
  for (vidx_t u = 0; u < g.n1(); ++u)
    out.edges_per_component[static_cast<std::size_t>(
        out.label_v1[static_cast<std::size_t>(u)])] +=
        g.csr().row_degree(u);
  return out;
}

BipartiteGraph largest_component(const BipartiteGraph& g) {
  const Components components = connected_components(g);
  if (components.count == 0 || g.edge_count() == 0) return g;
  const auto best = static_cast<vidx_t>(
      std::max_element(components.edges_per_component.begin(),
                       components.edges_per_component.end()) -
      components.edges_per_component.begin());
  std::vector<std::uint8_t> keep(static_cast<std::size_t>(g.n1()));
  for (vidx_t u = 0; u < g.n1(); ++u)
    keep[static_cast<std::size_t>(u)] =
        components.label_v1[static_cast<std::size_t>(u)] == best ? 1 : 0;
  return BipartiteGraph(sparse::mask_rows(g.csr(), keep));
}

CorePruneResult two_core_prune(const BipartiteGraph& g) {
  CorePruneResult result;
  result.subgraph = g;
  std::vector<std::uint8_t> alive_v1(static_cast<std::size_t>(g.n1()), 1);
  std::vector<std::uint8_t> alive_v2(static_cast<std::size_t>(g.n2()), 1);

  // A degree-0 vertex carries no edges, so only degree-exactly-1 vertices
  // need removing; the fixpoint leaves no vertex of degree 1, i.e. the
  // 2-core's edge set (plus edgeless vertices, which keep their ids).
  while (true) {
    ++result.rounds;
    const auto deg1 = sparse::row_degrees(result.subgraph.csr());
    const auto deg2 = sparse::row_degrees(result.subgraph.csc());
    bool changed = false;
    for (vidx_t u = 0; u < g.n1(); ++u) {
      const auto i = static_cast<std::size_t>(u);
      if (alive_v1[i] && deg1[i] == 1) {
        alive_v1[i] = 0;
        ++result.removed_v1;
        changed = true;
      }
    }
    for (vidx_t v = 0; v < g.n2(); ++v) {
      const auto i = static_cast<std::size_t>(v);
      if (alive_v2[i] && deg2[i] == 1) {
        alive_v2[i] = 0;
        ++result.removed_v2;
        changed = true;
      }
    }
    if (!changed) break;
    result.subgraph = BipartiteGraph(sparse::mask_cols(
        sparse::mask_rows(result.subgraph.csr(), alive_v1), alive_v2));
  }
  return result;
}

}  // namespace bfc::graph
