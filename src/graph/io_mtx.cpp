#include "graph/io_mtx.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "chk/validate.hpp"
#include "sparse/coo.hpp"
#include "util/timer.hpp"

namespace bfc::graph {
namespace {

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

BipartiteGraph read_mtx(std::istream& in, const std::string& source) {
  BFC_TRACE_SCOPE("graph.read_mtx");
  const Timer parse_timer;
  const auto fail = [&source](const std::string& what) {
    return std::runtime_error("mtx " + source + ": " + what);
  };
  std::string line;
  if (!std::getline(in, line)) throw fail("empty stream");

  std::istringstream banner(lowercase(line));
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (tag != "%%matrixmarket" || object != "matrix")
    throw fail("missing %%MatrixMarket matrix banner");
  if (format != "coordinate")
    throw fail("only coordinate format supported");
  if (field != "pattern" && field != "integer" && field != "real")
    throw fail("unsupported field: " + field);
  if (symmetry != "general")
    throw fail(
        "biadjacency matrices are rectangular; symmetry must be general");
  const bool has_value = field != "pattern";

  // Skip comments up to the size line.
  do {
    if (!std::getline(in, line)) throw fail("no size line");
  } while (!line.empty() && line[0] == '%');

  std::istringstream size_line(line);
  long long rows = 0, cols = 0, entries = 0;
  if (!(size_line >> rows >> cols >> entries) || rows < 0 || cols < 0 ||
      entries < 0)
    throw fail("malformed size line: " + line);

  sparse::CooBuilder builder(static_cast<vidx_t>(rows),
                             static_cast<vidx_t>(cols));
  builder.reserve(static_cast<std::size_t>(entries));
  for (long long k = 0; k < entries; ++k) {
    // The entry section is free-form whitespace, so errors report the
    // 1-based entry index rather than a line number.
    const auto at_entry = [&](const std::string& what) {
      return fail("entry " + std::to_string(k + 1) + " of " +
                  std::to_string(entries) + ": " + what);
    };
    long long r = 0, c = 0;
    double value = 1.0;
    if (!(in >> r >> c)) throw at_entry("truncated entries");
    if (has_value && !(in >> value)) throw at_entry("entry missing value");
    if (r < 1 || r > rows || c < 1 || c > cols)
      throw at_entry("entry out of range");
    if (value != 0.0)
      builder.add(static_cast<vidx_t>(r - 1), static_cast<vidx_t>(c - 1));
  }
  BFC_COUNT_ADD("graph.io.edges_read", static_cast<std::int64_t>(entries));
  BFC_GAUGE_SET("graph.io.parse_seconds", parse_timer.seconds());
  BipartiteGraph g(builder.build());
  BFC_VALIDATE(g);
  return g;
}

BipartiteGraph load_mtx(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open mtx file: " + path);
  return read_mtx(in, path);
}

void write_mtx(std::ostream& out, const BipartiteGraph& g) {
  out << "%%MatrixMarket matrix coordinate pattern general\n";
  out << g.n1() << ' ' << g.n2() << ' ' << g.edge_count() << '\n';
  const auto& a = g.csr();
  for (vidx_t u = 0; u < a.rows(); ++u)
    for (const vidx_t v : a.row(u)) out << (u + 1) << ' ' << (v + 1) << '\n';
}

void save_mtx(const std::string& path, const BipartiteGraph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write mtx file: " + path);
  write_mtx(out, g);
}

}  // namespace bfc::graph
