// Bipartite graph G = (V1, V2, E) held as the biadjacency matrix A in both
// orientations: CSR of A (rows = V1, the paper's invariants 5-8) and CSR of
// Aᵀ, i.e. the CSC view of A (columns = V2, invariants 1-4).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sparse/csr.hpp"
#include "util/common.hpp"

namespace bfc::graph {

class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  /// From the biadjacency pattern; builds the transpose eagerly.
  explicit BipartiteGraph(sparse::CsrPattern biadjacency);

  /// From an edge list over [0, n1) x [0, n2); duplicate edges are merged.
  static BipartiteGraph from_edges(
      vidx_t n1, vidx_t n2,
      const std::vector<std::pair<vidx_t, vidx_t>>& edge_list);

  /// |V1| (rows of A).
  [[nodiscard]] vidx_t n1() const noexcept { return a_.rows(); }
  /// |V2| (columns of A).
  [[nodiscard]] vidx_t n2() const noexcept { return a_.cols(); }
  [[nodiscard]] offset_t edge_count() const noexcept { return a_.nnz(); }

  /// A in CSR: neighbours of a V1 vertex.
  [[nodiscard]] const sparse::CsrPattern& csr() const noexcept { return a_; }
  /// Aᵀ in CSR (= CSC view of A): neighbours of a V2 vertex.
  [[nodiscard]] const sparse::CsrPattern& csc() const noexcept { return at_; }

  [[nodiscard]] std::span<const vidx_t> neighbors_of_v1(vidx_t u) const {
    return a_.row(u);
  }
  [[nodiscard]] std::span<const vidx_t> neighbors_of_v2(vidx_t v) const {
    return at_.row(v);
  }

  [[nodiscard]] bool has_edge(vidx_t u, vidx_t v) const { return a_.has(u, v); }

  /// The same graph with the roles of V1 and V2 exchanged (A -> Aᵀ).
  [[nodiscard]] BipartiteGraph swapped_sides() const;

  bool operator==(const BipartiteGraph& other) const {
    return a_ == other.a_;
  }

 private:
  sparse::CsrPattern a_;
  sparse::CsrPattern at_;
};

}  // namespace bfc::graph
