// KONECT-style edge-list I/O. The KONECT `out.<name>` files used by the
// paper are plain text: comment lines start with '%', data lines are
// "u v [weight [timestamp]]" with 1-based vertex ids, where u indexes V1 and
// v indexes V2. Loading one of the real datasets therefore works unchanged;
// our benches substitute calibrated synthetic graphs (see DESIGN.md §4).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/bipartite_graph.hpp"

namespace bfc::graph {

/// Parses a KONECT-style stream. Vertex-set sizes are inferred from the
/// maximum ids seen unless forced via n1/n2 (pass 0 to infer). `source`
/// names the stream in parse errors (load_edgelist passes the file path),
/// so "malformed line 341" also says which file it came from.
[[nodiscard]] BipartiteGraph read_edgelist(std::istream& in, vidx_t n1 = 0,
                                           vidx_t n2 = 0,
                                           const std::string& source =
                                               "<stream>");

/// Loads from a file path; throws std::runtime_error if unreadable.
[[nodiscard]] BipartiteGraph load_edgelist(const std::string& path,
                                           vidx_t n1 = 0, vidx_t n2 = 0);

/// Writes "u v" lines with 1-based ids plus a '%' header.
void write_edgelist(std::ostream& out, const BipartiteGraph& g);
void save_edgelist(const std::string& path, const BipartiteGraph& g);

}  // namespace bfc::graph
