#include "graph/io_binary.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "chk/validate.hpp"
#include "util/crc32.hpp"

namespace bfc::graph {
namespace {

constexpr std::array<char, 8> kMagic = {'B', 'F', 'C', '2', 0, 0, 0, 0};
constexpr std::array<char, 4> kLegacyMagic = {'B', 'F', 'C', '1'};

/// Reader with enough context (source name, running byte offset) to make
/// every failure message actionable.
struct Reader {
  std::istream& in;
  const std::string& source;
  std::uint64_t offset = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("binary graph " + source + ": " + what +
                             " at byte offset " + std::to_string(offset));
  }

  void bytes(void* dst, std::size_t n, const char* what) {
    in.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in.gcount()) != n)
      fail(std::string("truncated ") + what + " (wanted " +
           std::to_string(n) + " bytes, got " +
           std::to_string(in.gcount()) + ")");
    offset += n;
  }

  template <typename T>
  T pod(const char* what) {
    T value{};
    bytes(&value, sizeof value, what);
    return value;
  }

  template <typename T>
  std::vector<T> checked_section(std::size_t n, const char* what) {
    const std::uint32_t stored = pod<std::uint32_t>(what);
    std::vector<T> v(n);
    bytes(v.data(), n * sizeof(T), what);
    const std::uint32_t actual = crc32(v.data(), n * sizeof(T));
    if (actual != stored)
      fail(std::string(what) + " CRC mismatch (stored " +
           std::to_string(stored) + ", computed " + std::to_string(actual) +
           ")");
    return v;
  }
};

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
void write_checked_section(std::ostream& out, const std::vector<T>& v) {
  write_pod(out, crc32(v.data(), v.size() * sizeof(T)));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

}  // namespace

void write_binary(std::ostream& out, const BipartiteGraph& g) {
  out.write(kMagic.data(), kMagic.size());
  write_pod(out, kBinaryFormatVersion);

  struct Dims {
    vidx_t n1;
    vidx_t n2;
    offset_t nnz;
  } const dims{g.n1(), g.n2(), g.edge_count()};
  static_assert(sizeof(Dims) == 16, "dimension header must pack to 16 bytes");
  write_pod(out, crc32(&dims, sizeof dims));
  write_pod(out, dims);

  write_checked_section(out, g.csr().row_ptr());
  write_checked_section(out, g.csr().col_idx());
}

void save_binary(const std::string& path, const BipartiteGraph& g) {
  // Write-then-rename: the target path either keeps its previous content
  // or atomically becomes the complete new snapshot — never a torn mix.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("cannot write binary graph: " + tmp);
    write_binary(out, g);
    out.flush();
    if (!out)
      throw std::runtime_error("write failed for binary graph: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot publish binary graph (rename " + tmp +
                             " -> " + path + " failed)");
  }
}

BipartiteGraph read_binary(std::istream& in, const std::string& source) {
  Reader r{in, source};

  std::array<char, 8> magic{};
  r.bytes(magic.data(), magic.size(), "magic");
  if (std::memcmp(magic.data(), kLegacyMagic.data(), kLegacyMagic.size()) ==
      0)
    throw std::runtime_error(
        "binary graph " + source +
        ": legacy BFC1 format (no checksums) is no longer readable; "
        "regenerate the cache to get the checksummed BFC2 layout");
  if (std::memcmp(magic.data(), kMagic.data(), kMagic.size()) != 0)
    throw std::runtime_error("binary graph " + source + ": bad magic");

  const auto version = r.pod<std::uint32_t>("version");
  if (version != kBinaryFormatVersion)
    throw std::runtime_error("binary graph " + source +
                             ": unsupported format version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kBinaryFormatVersion) + ")");

  const auto dims_crc = r.pod<std::uint32_t>("header CRC");
  struct Dims {
    vidx_t n1;
    vidx_t n2;
    offset_t nnz;
  };
  const auto dims = r.pod<Dims>("dimension header");
  if (crc32(&dims, sizeof dims) != dims_crc)
    throw std::runtime_error("binary graph " + source +
                             ": dimension header CRC mismatch");
  if (dims.n1 < 0 || dims.n2 < 0 || dims.nnz < 0)
    throw std::runtime_error("binary graph " + source +
                             ": negative dimension in header");

  auto row_ptr = r.checked_section<offset_t>(
      static_cast<std::size_t>(dims.n1) + 1, "row_ptr section");
  auto col_idx = r.checked_section<vidx_t>(
      static_cast<std::size_t>(dims.nnz), "col_idx section");
  BipartiteGraph g(sparse::CsrPattern(dims.n1, dims.n2, std::move(row_ptr),
                                      std::move(col_idx)));
  BFC_VALIDATE(g);
  return g;
}

BipartiteGraph load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open binary graph: " + path);
  return read_binary(in, path);
}

}  // namespace bfc::graph
