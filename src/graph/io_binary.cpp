#include "graph/io_binary.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "chk/validate.hpp"

namespace bfc::graph {
namespace {

constexpr std::array<char, 8> kMagic = {'B', 'F', 'C', '1', 0, 0, 0, 0};

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw std::runtime_error("binary graph: truncated stream");
  return value;
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& in, std::size_t n) {
  std::vector<T> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!in) throw std::runtime_error("binary graph: truncated array");
  return v;
}

}  // namespace

void write_binary(std::ostream& out, const BipartiteGraph& g) {
  out.write(kMagic.data(), kMagic.size());
  write_pod(out, g.n1());
  write_pod(out, g.n2());
  write_pod(out, g.edge_count());
  write_vec(out, g.csr().row_ptr());
  write_vec(out, g.csr().col_idx());
}

void save_binary(const std::string& path, const BipartiteGraph& g) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write binary graph: " + path);
  write_binary(out, g);
}

BipartiteGraph read_binary(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || std::memcmp(magic.data(), kMagic.data(), kMagic.size()) != 0)
    throw std::runtime_error("binary graph: bad magic");
  const auto n1 = read_pod<vidx_t>(in);
  const auto n2 = read_pod<vidx_t>(in);
  const auto nnz = read_pod<offset_t>(in);
  require(n1 >= 0 && n2 >= 0 && nnz >= 0, "binary graph: negative header");
  auto row_ptr = read_vec<offset_t>(in, static_cast<std::size_t>(n1) + 1);
  auto col_idx = read_vec<vidx_t>(in, static_cast<std::size_t>(nnz));
  BipartiteGraph g(
      sparse::CsrPattern(n1, n2, std::move(row_ptr), std::move(col_idx)));
  BFC_VALIDATE(g);
  return g;
}

BipartiteGraph load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open binary graph: " + path);
  return read_binary(in);
}

}  // namespace bfc::graph
