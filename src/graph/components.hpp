// Connectivity utilities over the bipartite graph: connected components on
// the unified vertex set, largest-component extraction, and the 2-core
// prune — a correctness-preserving preprocessing step for butterfly work
// (a vertex of degree < 2 cannot be a butterfly corner, and removing it can
// only expose more such vertices, so the 2-core contains every butterfly).
#pragma once

#include "graph/bipartite_graph.hpp"
#include "util/common.hpp"

namespace bfc::graph {

struct Components {
  vidx_t count = 0;
  std::vector<vidx_t> label_v1;  // component id per V1 vertex
  std::vector<vidx_t> label_v2;  // component id per V2 vertex
  std::vector<offset_t> edges_per_component;
};

/// BFS labelling over the unified vertex set. Isolated vertices each form
/// their own (edgeless) component.
[[nodiscard]] Components connected_components(const BipartiteGraph& g);

/// Subgraph of the component with the most edges (dimensions preserved,
/// other components' edges dropped). The input graph if it has no edges.
[[nodiscard]] BipartiteGraph largest_component(const BipartiteGraph& g);

struct CorePruneResult {
  BipartiteGraph subgraph;      // dimensions preserved
  vidx_t removed_v1 = 0;        // vertices stripped of all edges
  vidx_t removed_v2 = 0;
  int rounds = 0;
};

/// Iteratively removes vertices (both sides) of degree < 2 until none
/// remain. Butterfly counts, per-vertex butterfly counts of surviving
/// vertices, and per-edge supports of surviving edges are all unchanged.
[[nodiscard]] CorePruneResult two_core_prune(const BipartiteGraph& g);

}  // namespace bfc::graph
