#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "sparse/coo.hpp"
#include "sparse/ops.hpp"
#include "util/rng.hpp"

namespace bfc::graph {
namespace {

std::vector<vidx_t> permutation_for(const std::vector<offset_t>& degrees,
                                    Order order, Rng& rng) {
  const auto n = static_cast<vidx_t>(degrees.size());
  std::vector<vidx_t> by_rank(static_cast<std::size_t>(n));
  std::iota(by_rank.begin(), by_rank.end(), 0);
  switch (order) {
    case Order::kDegreeAscending:
      std::sort(by_rank.begin(), by_rank.end(), [&](vidx_t a, vidx_t b) {
        const offset_t da = degrees[static_cast<std::size_t>(a)];
        const offset_t db = degrees[static_cast<std::size_t>(b)];
        return da != db ? da < db : a < b;
      });
      break;
    case Order::kDegreeDescending:
      std::sort(by_rank.begin(), by_rank.end(), [&](vidx_t a, vidx_t b) {
        const offset_t da = degrees[static_cast<std::size_t>(a)];
        const offset_t db = degrees[static_cast<std::size_t>(b)];
        return da != db ? da > db : a < b;
      });
      break;
    case Order::kRandom:
      std::shuffle(by_rank.begin(), by_rank.end(), rng);
      break;
  }
  // by_rank[new] = old  ->  invert to old -> new.
  std::vector<vidx_t> old_to_new(static_cast<std::size_t>(n));
  for (vidx_t pos = 0; pos < n; ++pos)
    old_to_new[static_cast<std::size_t>(by_rank[static_cast<std::size_t>(pos)])] =
        pos;
  return old_to_new;
}

void check_permutation(const std::vector<vidx_t>& perm, vidx_t n,
                       const char* what) {
  require(perm.size() == static_cast<std::size_t>(n),
          std::string(what) + ": permutation size mismatch");
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
  for (const vidx_t p : perm) {
    require(p >= 0 && p < n, std::string(what) + ": entry out of range");
    require(!seen[static_cast<std::size_t>(p)],
            std::string(what) + ": duplicate entry");
    seen[static_cast<std::size_t>(p)] = 1;
  }
}

}  // namespace

BipartiteGraph relabel(const BipartiteGraph& g,
                       const std::vector<vidx_t>& v1_old_to_new,
                       const std::vector<vidx_t>& v2_old_to_new) {
  check_permutation(v1_old_to_new, g.n1(), "relabel v1");
  check_permutation(v2_old_to_new, g.n2(), "relabel v2");
  sparse::CooBuilder builder(g.n1(), g.n2());
  builder.reserve(static_cast<std::size_t>(g.edge_count()));
  for (vidx_t u = 0; u < g.n1(); ++u)
    for (const vidx_t v : g.neighbors_of_v1(u))
      builder.add(v1_old_to_new[static_cast<std::size_t>(u)],
                  v2_old_to_new[static_cast<std::size_t>(v)]);
  return BipartiteGraph(builder.build());
}

Relabeling reorder(const BipartiteGraph& g, Order order, std::uint64_t seed) {
  Rng rng(seed);
  Relabeling r;
  r.v1_old_to_new =
      permutation_for(sparse::row_degrees(g.csr()), order, rng);
  r.v2_old_to_new =
      permutation_for(sparse::row_degrees(g.csc()), order, rng);
  r.graph = relabel(g, r.v1_old_to_new, r.v2_old_to_new);
  return r;
}

}  // namespace bfc::graph
