#include "graph/stats.hpp"
#include "chk/checked_math.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "sparse/ops.hpp"

namespace bfc::graph {
namespace {

DegreeSummary summarize_degrees(const std::vector<offset_t>& deg) {
  DegreeSummary s;
  if (deg.empty()) return s;
  s.min = *std::min_element(deg.begin(), deg.end());
  s.max = *std::max_element(deg.begin(), deg.end());
  count_t total = 0;
  for (const offset_t d : deg) {
    total = chk::checked_add(total, d);
    if (d == 0) ++s.isolated;
  }
  s.mean = static_cast<double>(total) / static_cast<double>(deg.size());
  return s;
}

count_t wedge_sum(const std::vector<offset_t>& deg) {
  count_t total = 0;
  for (const offset_t d : deg)
    total = chk::checked_add(total, chk::checked_choose2(d));
  return total;
}

}  // namespace

DegreeSummary degree_summary_v1(const BipartiteGraph& g) {
  return summarize_degrees(sparse::row_degrees(g.csr()));
}

DegreeSummary degree_summary_v2(const BipartiteGraph& g) {
  return summarize_degrees(sparse::row_degrees(g.csc()));
}

count_t wedges_v1_endpoints(const BipartiteGraph& g) {
  // Wedge point is a V2 vertex; its degree chooses the two endpoints.
  return wedge_sum(sparse::row_degrees(g.csc()));
}

count_t wedges_v2_endpoints(const BipartiteGraph& g) {
  return wedge_sum(sparse::row_degrees(g.csr()));
}

count_t caterpillars(const BipartiteGraph& g) {
  const auto deg1 = sparse::row_degrees(g.csr());
  const auto deg2 = sparse::row_degrees(g.csc());
  count_t total = 0;
  const auto& a = g.csr();
  for (vidx_t u = 0; u < a.rows(); ++u) {
    const count_t du = deg1[static_cast<std::size_t>(u)] - 1;
    if (du <= 0) continue;
    for (const vidx_t v : a.row(u)) {
      const count_t dv = deg2[static_cast<std::size_t>(v)] - 1;
      if (dv > 0) total = chk::checked_add(total, chk::checked_mul(du, dv));
    }
  }
  return total;
}

double clustering_coefficient(const BipartiteGraph& g, count_t butterflies) {
  const count_t cats = caterpillars(g);
  if (cats == 0) return 0.0;
  return 4.0 * static_cast<double>(butterflies) / static_cast<double>(cats);
}

namespace {

std::vector<vidx_t> histogram_of(const std::vector<offset_t>& deg) {
  offset_t max_deg = 0;
  for (const offset_t d : deg) max_deg = std::max(max_deg, d);
  std::vector<vidx_t> hist(static_cast<std::size_t>(max_deg) + 1, 0);
  for (const offset_t d : deg) ++hist[static_cast<std::size_t>(d)];
  return hist;
}

offset_t percentile_of(std::vector<offset_t> deg, double q) {
  require(q >= 0.0 && q <= 100.0, "degree percentile: q outside [0, 100]");
  if (deg.empty()) return 0;
  std::sort(deg.begin(), deg.end());
  // Nearest-rank: the ceil(q/100 * n)-th smallest (1-indexed).
  const auto n = static_cast<double>(deg.size());
  auto rank = static_cast<std::size_t>(std::ceil(q / 100.0 * n));
  if (rank > 0) --rank;  // to 0-indexed
  return deg[std::min(rank, deg.size() - 1)];
}

}  // namespace

std::vector<vidx_t> degree_histogram_v1(const BipartiteGraph& g) {
  return histogram_of(sparse::row_degrees(g.csr()));
}

std::vector<vidx_t> degree_histogram_v2(const BipartiteGraph& g) {
  return histogram_of(sparse::row_degrees(g.csc()));
}

offset_t degree_percentile_v1(const BipartiteGraph& g, double q) {
  return percentile_of(sparse::row_degrees(g.csr()), q);
}

offset_t degree_percentile_v2(const BipartiteGraph& g, double q) {
  return percentile_of(sparse::row_degrees(g.csc()), q);
}

double density(const BipartiteGraph& g) {
  const double cells =
      static_cast<double>(g.n1()) * static_cast<double>(g.n2());
  return cells == 0.0 ? 0.0 : static_cast<double>(g.edge_count()) / cells;
}

GraphSummary summarize(const BipartiteGraph& g) {
  GraphSummary s;
  s.n1 = g.n1();
  s.n2 = g.n2();
  s.edges = g.edge_count();
  s.density = density(g);
  s.deg_v1 = degree_summary_v1(g);
  s.deg_v2 = degree_summary_v2(g);
  s.wedges_v1 = wedges_v1_endpoints(g);
  s.wedges_v2 = wedges_v2_endpoints(g);
  s.caterpillars = caterpillars(g);
  return s;
}

std::ostream& operator<<(std::ostream& os, const GraphSummary& s) {
  os << "|V1|=" << s.n1 << " |V2|=" << s.n2 << " |E|=" << s.edges
     << " density=" << s.density << " degV1[min=" << s.deg_v1.min
     << ",max=" << s.deg_v1.max << ",mean=" << s.deg_v1.mean
     << "] degV2[min=" << s.deg_v2.min << ",max=" << s.deg_v2.max
     << ",mean=" << s.deg_v2.mean << "] wedgesV1=" << s.wedges_v1
     << " wedgesV2=" << s.wedges_v2 << " caterpillars=" << s.caterpillars;
  return os;
}

}  // namespace bfc::graph
