// Matrix Market (coordinate) I/O for biadjacency matrices. Supports the
// "pattern" field directly and tolerates "integer"/"real" files by treating
// any explicit nonzero as an edge; "general" symmetry only (a biadjacency
// matrix is rectangular).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/bipartite_graph.hpp"

namespace bfc::graph {

/// `source` names the stream in parse errors (load_mtx passes the file
/// path) alongside the offending line or entry index.
[[nodiscard]] BipartiteGraph read_mtx(std::istream& in,
                                      const std::string& source = "<stream>");
[[nodiscard]] BipartiteGraph load_mtx(const std::string& path);

void write_mtx(std::ostream& out, const BipartiteGraph& g);
void save_mtx(const std::string& path, const BipartiteGraph& g);

}  // namespace bfc::graph
