// ButterflyService — the serving facade. One writer thread feeds edge
// batches in; any number of reader threads submit queries and get futures
// back. Three layers cooperate per query:
//
//   1. snapshot pinning   every query is answered against one immutable
//                         epoch (the caller's pinned snapshot, or the
//                         latest at submission time);
//   2. LRU result cache   (epoch, kind, argument) -> answer, so repeated
//                         queries on an unchanged snapshot are O(1); the
//                         cache is invalidated wholesale on publish;
//   3. request coalescing per-vertex tip queries for the same (epoch,
//                         side) share ONE pass over count::local_counts —
//                         the first request computes the full tip vector,
//                         concurrent and later requests block on (or read)
//                         the same shared future instead of re-scanning.
//
// Everything is wired into the obs registry: svc.queries, svc.cache_hits /
// svc.cache_misses, svc.tip_passes, svc.coalesced_queries /
// svc.coalesced_batches, svc.queue_depth, svc.epochs_published and one
// latency histogram per query kind (svc.latency_us.<kind>).
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "count/top_pairs.hpp"
#include "svc/executor.hpp"
#include "svc/request.hpp"
#include "svc/result_cache.hpp"
#include "svc/snapshot_store.hpp"
#include "util/common.hpp"

namespace bfc::svc {

struct ServiceOptions {
  int threads = 4;                    // query-pool workers
  std::size_t cache_capacity = 1 << 16;
  std::uint64_t memo_keep_epochs = 4;  // trailing epochs whose tip passes stay
};

using TopPairsPtr = std::shared_ptr<const std::vector<count::VertexPair>>;

class ButterflyService {
 public:
  ButterflyService(vidx_t n1, vidx_t n2, ServiceOptions options = {});

  // ---- writer side -------------------------------------------------------

  /// Applies the batch and publishes the next epoch; invalidates the result
  /// cache and retires tip-pass memos older than memo_keep_epochs.
  PublishResult apply_updates(std::span<const EdgeUpdate> batch);
  PublishResult apply_updates(std::initializer_list<EdgeUpdate> batch) {
    return apply_updates(
        std::span<const EdgeUpdate>(batch.begin(), batch.end()));
  }

  // ---- reader side -------------------------------------------------------

  /// Pins the latest snapshot. Pass it to the query methods to run several
  /// queries against one consistent epoch; queries called with no snapshot
  /// pin the latest themselves.
  [[nodiscard]] SnapshotPtr snapshot() const { return store_.current(); }

  /// Ξ_G of the pinned epoch. O(1): maintained incrementally by the writer.
  [[nodiscard]] std::future<count_t> global_count(SnapshotPtr snap = {});

  /// Butterflies containing V1 vertex u (tip number). Coalesced: concurrent
  /// same-epoch tip queries share one butterflies_per_v1 pass.
  [[nodiscard]] std::future<count_t> vertex_tip_v1(vidx_t u,
                                                   SnapshotPtr snap = {});
  [[nodiscard]] std::future<count_t> vertex_tip_v2(vidx_t v,
                                                   SnapshotPtr snap = {});

  /// Butterflies containing edge (u, v); 0 when the edge is absent at the
  /// pinned epoch. O(Σ_{w∈N(v)} min(deg u, deg w)), no global pass.
  [[nodiscard]] std::future<count_t> edge_support(vidx_t u, vidx_t v,
                                                  SnapshotPtr snap = {});

  /// The k V1-pairs with the most wedges at the pinned epoch.
  [[nodiscard]] std::future<TopPairsPtr> top_pairs(std::size_t k,
                                                   SnapshotPtr snap = {});

  // ---- introspection -----------------------------------------------------

  [[nodiscard]] const SnapshotStore& store() const noexcept { return store_; }
  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] std::size_t queue_depth() const { return pool_.queue_depth(); }
  [[nodiscard]] int thread_count() const noexcept {
    return pool_.thread_count();
  }

 private:
  using TipVector = std::shared_ptr<const std::vector<count_t>>;

  /// The coalescing point: returns the full tip vector for (snap->epoch,
  /// side), computing it at most once per epoch and side.
  TipVector tips_for(const SnapshotPtr& snap, bool v1_side);

  struct TipPass {
    std::shared_future<TipVector> result;
    bool has_joiner = false;  // became a coalesced batch already
  };

  SnapshotStore store_;
  ResultCache cache_;
  std::uint64_t memo_keep_epochs_;
  std::mutex memo_mu_;
  std::map<std::pair<std::uint64_t, bool>, TipPass> tip_memo_;
  Executor pool_;  // last: workers stop before the layers they use die
};

}  // namespace bfc::svc
