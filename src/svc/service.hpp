// ButterflyService — the serving facade. One writer thread feeds edge
// batches in; any number of reader threads submit queries and get futures
// back. Three layers cooperate per query:
//
//   1. snapshot pinning   every query is answered against one immutable
//                         epoch (the caller's pinned snapshot, or the
//                         latest at submission time);
//   2. LRU result cache   (epoch, kind, argument) -> answer, so repeated
//                         queries on an unchanged snapshot are O(1); on
//                         publish, entries older than the just-retired
//                         epoch are dropped — the retired epoch itself is
//                         kept as the stale-answer tier;
//   3. request coalescing per-vertex tip queries for the same (epoch,
//                         side) share ONE pass over count::local_counts —
//                         the first request computes the full tip vector,
//                         concurrent and later requests block on (or read)
//                         the same shared future instead of re-scanning.
//
// Fault tolerance (the robustness layer on top):
//
//   - admission control   the query pool's queue is bounded
//                         (ServiceOptions::max_queue) with a pluggable shed
//                         policy; a request refused at admission degrades
//                         on the caller's thread instead of queueing;
//   - deadlines           Request carries an optional Deadline; expired
//                         tasks are abandoned at dequeue, and an in-flight
//                         tip pass checks a CancelToken per row so it can
//                         give up mid-scan;
//   - degraded answers    every query resolves to QueryResult{value,
//                         epoch, fidelity}: under overload (queue depth or
//                         p95 latency past the configured thresholds) the
//                         service walks a ladder — previous-epoch cached
//                         answer (kStale), retained tip-pass memo
//                         (kStale), sampled estimate via count::approx_tip
//                         (kApprox) — and only throws OverloadError when
//                         no rung produces a value.
//
// Everything is wired into the obs registry: svc.queries, svc.cache_hits /
// svc.cache_misses / svc.cache_hit_rate, svc.tip_passes,
// svc.coalesced_queries / svc.coalesced_batches, svc.queue_depth,
// svc.epochs_published, svc.shed / svc.rejected / svc.deadline_expired,
// svc.degraded / svc.stale_answers / svc.approx_fallbacks /
// svc.inline_answers, and one latency histogram per query kind
// (svc.latency_us.<kind>).
//
// Telemetry (obs/spans.hpp): when span collection is enabled, every query
// runs under one "svc.query.<kind>" span — rooted fresh, or parented into
// the Request's TraceContext — with child spans for the queue wait
// (svc.queue, recorded by the Executor) and the coalesced kernel pass
// (svc.kernel.tip_v1/v2). Tags record the decisions: cache=hit|miss,
// outcome=exact|stale|approx|shed, rejected/cancelled flags, and the rung
// the degrade ladder stopped at. SLO accounting (svc/slo.hpp) rides the
// same latency stream: ServiceOptions::slo_target_us arms per-kind
// objectives whose error-budget burn feeds overloaded().
#pragma once

#include <array>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.hpp"

#include "count/top_pairs.hpp"
#include "svc/executor.hpp"
#include "svc/request.hpp"
#include "svc/result_cache.hpp"
#include "svc/slo.hpp"
#include "svc/snapshot_store.hpp"
#include "util/common.hpp"

namespace bfc::svc {

struct ServiceOptions {
  int threads = 4;                     // query-pool workers
  std::size_t cache_capacity = 1 << 16;
  std::uint64_t memo_keep_epochs = 4;  // trailing epochs whose tip passes stay
  // ---- robustness knobs --------------------------------------------------
  std::size_t max_queue = 0;  // bound on the admission queue; 0 = unbounded
  ShedPolicy shed_policy = ShedPolicy::kRejectNew;
  std::size_t degrade_queue_depth = 0;  // queue depth that trips degraded
                                        // mode; 0 = never trip on depth
  double degrade_p95_us = 0.0;          // p95 latency (µs) that trips
                                        // degraded mode; 0 = never
  std::int64_t approx_samples = 256;    // budget of the sampled fallback
  // ---- SLO knobs ---------------------------------------------------------
  // Per-kind latency targets (µs), indexed by QueryKind; 0 = no objective
  // for that kind. When any target is armed, a windowed error-budget burn
  // rate > 1 also trips overloaded(), so degradation engages while the
  // objective can still be saved.
  std::array<double, kQueryKinds> slo_target_us{};
  double slo_objective = 0.99;  // fraction of requests that must hit target
};

using TopPairsPtr = std::shared_ptr<const std::vector<count::VertexPair>>;

class ButterflyService {
 public:
  ButterflyService(vidx_t n1, vidx_t n2, ServiceOptions options = {});

  // ---- writer side -------------------------------------------------------

  /// Applies the batch and publishes the next epoch; drops cache entries
  /// older than the just-retired epoch (which stays as the stale tier) and
  /// retires tip-pass memos older than memo_keep_epochs.
  PublishResult apply_updates(std::span<const EdgeUpdate> batch);
  PublishResult apply_updates(std::initializer_list<EdgeUpdate> batch) {
    return apply_updates(
        std::span<const EdgeUpdate>(batch.begin(), batch.end()));
  }

  /// Crash-safe checkpoint of the latest published epoch (write-then-rename
  /// via SnapshotStore::persist). Never blocks readers or the writer. A
  /// persist failure triggers a flight-recorder dump before rethrowing.
  void persist(const std::string& path) const;

  /// Warm restart from a persisted checkpoint: replaces the store's state
  /// and flushes every cache/memo tier (they are keyed by the old epoch
  /// sequence). Throws std::runtime_error on a corrupted file, leaving the
  /// service unchanged.
  void restore(const std::string& path);

  // ---- reader side -------------------------------------------------------

  /// Pins the latest snapshot. Pass it to the query methods to run several
  /// queries against one consistent epoch; queries called with no snapshot
  /// pin the latest themselves.
  [[nodiscard]] SnapshotPtr snapshot() const { return store_.current(); }

  /// Ξ_G of the pinned epoch. O(1): maintained incrementally by the writer.
  /// Never queued, never degraded.
  [[nodiscard]] std::future<QueryResult<count_t>> global_count(
      Request req = {});

  /// Butterflies containing V1 vertex u (tip number). Coalesced: concurrent
  /// same-epoch tip queries share one butterflies_per_v1 pass. Under
  /// overload the answer may be kStale (previous epoch) or kApprox
  /// (sampled); the fidelity tag says which.
  [[nodiscard]] std::future<QueryResult<count_t>> vertex_tip_v1(
      vidx_t u, Request req = {});
  [[nodiscard]] std::future<QueryResult<count_t>> vertex_tip_v2(
      vidx_t v, Request req = {});

  /// Butterflies containing edge (u, v); 0 when the edge is absent at the
  /// pinned epoch. O(Σ_{w∈N(v)} min(deg u, deg w)), no global pass — cheap
  /// enough that shedding answers it inline (exact) rather than degrading.
  [[nodiscard]] std::future<QueryResult<count_t>> edge_support(
      vidx_t u, vidx_t v, Request req = {});

  /// The k V1-pairs with the most wedges at the pinned epoch. Degrades to
  /// the previous epoch's cached list; with no stale list the future
  /// carries OverloadError.
  [[nodiscard]] std::future<QueryResult<TopPairsPtr>> top_pairs(
      std::size_t k, Request req = {});

  // ---- introspection -----------------------------------------------------

  [[nodiscard]] const SnapshotStore& store() const noexcept { return store_; }
  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] const Executor& pool() const noexcept { return pool_; }
  [[nodiscard]] std::size_t queue_depth() const { return pool_.queue_depth(); }
  [[nodiscard]] int thread_count() const noexcept {
    return pool_.thread_count();
  }
  /// p95 of the last kLatencyWindow observed query latencies (µs).
  [[nodiscard]] double latency_p95_us() const;
  /// True when the degradation thresholds are currently crossed — queue
  /// depth, p95 latency, or an SLO error budget burning faster than its
  /// objective allows.
  [[nodiscard]] bool overloaded() const;
  /// SLO accounting over the observed latency stream.
  [[nodiscard]] const SloTracker& slo() const noexcept { return slo_; }

  static constexpr std::size_t kLatencyWindow = 256;

 private:
  using TipVector = std::shared_ptr<const std::vector<count_t>>;

  std::future<QueryResult<count_t>> vertex_tip(vidx_t vertex, bool v1_side,
                                               Request req);

  /// The coalescing point: returns the full tip vector for (snap->epoch,
  /// side), computing it at most once per epoch and side. The token belongs
  /// to the request that ends up computing; CancelledError propagates to
  /// every coalesced waiter (each degrades independently). The computing
  /// request's trace context parents the kernel span (svc.kernel.tip_*),
  /// which closes tagged cancelled=true when the token fires mid-pass.
  TipVector tips_for(const SnapshotPtr& snap, bool v1_side,
                     const CancelToken& cancel,
                     const obs::TraceContext& trace = {});

  /// Degradation ladder for a tip query: previous-epoch cache entry, then
  /// a retained tip-pass memo from an earlier epoch, then the sampled
  /// estimator on the requested snapshot. Engaged in practice — the approx
  /// rung always produces — but optional so a future rung can refuse.
  std::optional<QueryResult<count_t>> degraded_tip(const SnapshotPtr& snap,
                                                   vidx_t vertex,
                                                   bool v1_side);

  /// Previous-epoch scalar cache probe (the kStale rung shared by tip and
  /// edge-support queries).
  std::optional<QueryResult<count_t>> stale_scalar(const SnapshotPtr& snap,
                                                   QueryKind kind,
                                                   std::int64_t a,
                                                   std::int64_t b);

  /// Most recent completed tip pass for `side` strictly before
  /// `before_epoch`, if any memo survives.
  std::optional<std::pair<std::uint64_t, TipVector>> stale_tips(
      std::uint64_t before_epoch, bool v1_side);

  /// Feeds the p95 ring and the SLO tracker with one completed request.
  void observe_latency(QueryKind kind, double us);

  /// The request's own context when it carries one, else a fresh root when
  /// span collection is on and the head-based sampler picks this request,
  /// else an inactive context (all spans inert).
  [[nodiscard]] static obs::TraceContext root_context(const Request& req) {
    if (req.trace.active()) return req.trace;
    if (obs::SpanLog::enabled() && obs::SpanLog::sample())
      return obs::TraceContext::root();
    return {};
  }

  struct TipPass {
    std::shared_future<TipVector> result;
    bool has_joiner = false;  // became a coalesced batch already
  };

  SnapshotStore store_;
  ResultCache cache_;
  std::uint64_t memo_keep_epochs_;
  std::size_t degrade_queue_depth_;
  double degrade_p95_us_;
  std::int64_t approx_samples_;
  Mutex memo_mu_{"svc.service.memo"};
  std::map<std::pair<std::uint64_t, bool>, TipPass> tip_memo_
      BFC_GUARDED_BY(memo_mu_);
  mutable Mutex lat_mu_{"svc.service.latency"};
  std::array<double, kLatencyWindow> lat_ring_ BFC_GUARDED_BY(lat_mu_){};
  std::size_t lat_next_ BFC_GUARDED_BY(lat_mu_) = 0;
  std::size_t lat_count_ BFC_GUARDED_BY(lat_mu_) = 0;
  SloTracker slo_;
  Executor pool_;  // last: workers stop before the layers they use die
};

}  // namespace bfc::svc
