// ButterflyService — the serving facade. One writer thread feeds edge
// batches in; any number of reader threads submit queries and get futures
// back. Three layers cooperate per query:
//
//   1. snapshot pinning   every query is answered against one immutable
//                         epoch (the caller's pinned snapshot, or the
//                         latest at submission time);
//   2. LRU result cache   (epoch, kind, argument) -> answer, so repeated
//                         queries on an unchanged snapshot are O(1); on
//                         publish, entries older than the just-retired
//                         epoch are dropped — the retired epoch itself is
//                         kept as the stale-answer tier;
//   3. request coalescing per-vertex tip queries for the same (epoch,
//                         side) share ONE pass over count::local_counts —
//                         the first request computes the full tip vector,
//                         concurrent and later requests block on (or read)
//                         the same shared future instead of re-scanning.
//
// Sharded serving (ServiceOptions::shards > 1): the store becomes a
// shard::ShardedSnapshotStore — the V1 side range-partitioned across N
// independently-published shards — and the same three layers go per-shard:
//
//   - pinning       queries pin a ShardView (one snapshot per shard); a
//                   Request may carry its own view, exactly as it may
//                   carry a snapshot in single-shard mode;
//   - routing       tip_v1 and edge_support route to the owning shard and
//                   add the cross-shard correction (shard/scatter_gather);
//                   global_count, tip_v2 and top_pairs scatter across all
//                   shards and gather exact merged answers;
//   - caching       the ResultCache runs shards + 1 tiers: tier k holds
//                   shard-k components keyed by shard k's epoch (a publish
//                   on shard j leaves them untouched), the last tier holds
//                   composed answers keyed by the view signature;
//   - coalescing    tip passes memoise per (shard, epoch, side); the
//                   cross-shard aggregate memoises per view signature.
//
// With shards == 1 every path is the pre-sharding one: same cache keys,
// same epochs, same persist format, byte-identical answers.
//
// Fault tolerance (the robustness layer on top):
//
//   - admission control   the query pool's queue is bounded
//                         (ServiceOptions::max_queue) with a pluggable shed
//                         policy; a request refused at admission degrades
//                         on the caller's thread instead of queueing;
//   - deadlines           Request carries an optional Deadline; expired
//                         tasks are abandoned at dequeue, and an in-flight
//                         tip or cross pass checks a CancelToken per row so
//                         it can give up mid-scan;
//   - degraded answers    every query resolves to QueryResult{value,
//                         epoch, fidelity}: under overload (queue depth or
//                         p95 latency past the configured thresholds) the
//                         service walks a ladder — previous-epoch (or
//                         previous-view-generation) cached answer (kStale),
//                         retained pass memos (kStale), sampled estimate
//                         via count::approx_tip (kApprox) — and only throws
//                         OverloadError when no rung produces a value.
//                         Sharded mode keeps one SloTracker per shard, so
//                         overload on one shard's traffic degrades only the
//                         queries routed there.
//
// Everything is wired into the obs registry: svc.queries, svc.cache_hits /
// svc.cache_misses / svc.cache_hit_rate, svc.tip_passes,
// svc.coalesced_queries / svc.coalesced_batches, svc.queue_depth,
// svc.epochs_published, svc.shed / svc.rejected / svc.deadline_expired,
// svc.degraded / svc.stale_answers / svc.approx_fallbacks /
// svc.inline_answers, one latency histogram per query kind
// (svc.latency_us.<kind>), and — sharded — svc.scatter_queries plus the
// per-shard family svc.shard.<k>.publishes / .cache_hit_rate / .degraded.
//
// Telemetry (obs/spans.hpp): when span collection is enabled, every query
// runs under one "svc.query.<kind>" span — rooted fresh, or parented into
// the Request's TraceContext — with child spans for the queue wait
// (svc.queue, recorded by the Executor), the coalesced kernel pass
// (svc.kernel.tip_v1/v2) and, sharded, the cross pass (svc.scatter /
// svc.gather) and per-shard publishes (svc.shard.publish). Tags record the
// decisions: cache=hit|miss, outcome=exact|stale|approx|shed,
// rejected/cancelled flags, and the rung the degrade ladder stopped at.
// SLO accounting (svc/slo.hpp) rides the same latency stream:
// ServiceOptions::slo_target_us arms per-kind objectives whose
// error-budget burn feeds overloaded().
#pragma once

#include <array>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "util/sync.hpp"

#include "count/top_pairs.hpp"
#include "shard/scatter_gather.hpp"
#include "shard/sharded_store.hpp"
#include "svc/executor.hpp"
#include "svc/request.hpp"
#include "svc/result_cache.hpp"
#include "svc/slo.hpp"
#include "svc/snapshot_store.hpp"
#include "util/common.hpp"

namespace bfc::obs {
class Counter;
class Gauge;
}  // namespace bfc::obs

namespace bfc::svc {

struct ServiceOptions {
  int threads = 4;                     // query-pool workers
  std::size_t cache_capacity = 1 << 16;
  std::uint64_t memo_keep_epochs = 4;  // trailing epochs whose tip passes stay
  // ---- sharding ----------------------------------------------------------
  // Number of range-partitioned V1 shards. 1 (the default) is the classic
  // single-store service; N > 1 turns on routed/scattered queries and lets
  // writers on disjoint ranges publish concurrently (apply_updates_shard).
  int shards = 1;
  // ---- robustness knobs --------------------------------------------------
  std::size_t max_queue = 0;  // bound on the admission queue; 0 = unbounded
  ShedPolicy shed_policy = ShedPolicy::kRejectNew;
  std::size_t degrade_queue_depth = 0;  // queue depth that trips degraded
                                        // mode; 0 = never trip on depth
  double degrade_p95_us = 0.0;          // p95 latency (µs) that trips
                                        // degraded mode; 0 = never
  std::int64_t approx_samples = 256;    // budget of the sampled fallback
  // ---- SLO knobs ---------------------------------------------------------
  // Per-kind latency targets (µs), indexed by QueryKind; 0 = no objective
  // for that kind. When any target is armed, a windowed error-budget burn
  // rate > 1 also trips overloaded(), so degradation engages while the
  // objective can still be saved.
  std::array<double, kQueryKinds> slo_target_us{};
  double slo_objective = 0.99;  // fraction of requests that must hit target
};

using TopPairsPtr = std::shared_ptr<const std::vector<count::VertexPair>>;

class ButterflyService {
 public:
  ButterflyService(vidx_t n1, vidx_t n2, ServiceOptions options = {});

  // ---- writer side -------------------------------------------------------

  /// Applies the batch and publishes the next epoch(s); drops cache entries
  /// older than the just-retired epoch (which stays as the stale tier) and
  /// retires tip-pass memos older than memo_keep_epochs. Sharded, the batch
  /// is routed by V1 owner and each touched shard publishes independently;
  /// the returned epoch is then the store's global version.
  PublishResult apply_updates(std::span<const EdgeUpdate> batch);
  PublishResult apply_updates(std::initializer_list<EdgeUpdate> batch) {
    return apply_updates(
        std::span<const EdgeUpdate>(batch.begin(), batch.end()));
  }

  /// Applies a batch wholly owned by shard k (every update's V1 endpoint in
  /// that shard's range — the shard enforces it). THE concurrent-writer
  /// entry point: writers on disjoint shards call this in parallel and
  /// their publishes overlap in time; each invalidates only its own cache
  /// tier. The returned epoch is shard k's new epoch.
  PublishResult apply_updates_shard(int k, std::span<const EdgeUpdate> batch);
  PublishResult apply_updates_shard(int k,
                                    std::initializer_list<EdgeUpdate> batch) {
    return apply_updates_shard(
        k, std::span<const EdgeUpdate>(batch.begin(), batch.end()));
  }

  /// Crash-safe checkpoint of the latest published epoch(s)
  /// (write-then-rename via SnapshotStore::persist; one file with a single
  /// shard — the exact legacy format — or per-shard files plus a manifest).
  /// Never blocks readers or writers. A persist failure triggers a
  /// flight-recorder dump before rethrowing.
  void persist(const std::string& path) const;

  /// Warm restart from a persisted checkpoint: replaces the store's state
  /// and flushes every cache/memo tier (they are keyed by the old epoch
  /// sequence). Throws std::runtime_error on a corrupted file, leaving the
  /// service unchanged.
  void restore(const std::string& path);

  /// Replaces shard k's handle (same id and owned range — the store
  /// enforces it); THE entry point for moving a range out of process: swap
  /// in a shard::RemoteShard and every query path serves across the socket
  /// unchanged. Flushes all caches/memos and resets the view generation,
  /// exactly like restore(): the new handle's epoch sequence need not
  /// extend the old one. Not safe concurrently with writers on shard k.
  void swap_shard(int k, shard::ShardHandlePtr handle);

  // ---- reader side -------------------------------------------------------

  /// Pins the latest snapshot. Pass it to the query methods to run several
  /// queries against one consistent epoch; queries called with no snapshot
  /// pin the latest themselves. Sharded (shards > 1) this MATERIALISES the
  /// union of the per-shard graphs at one pinned view — an O(edges) rebuild
  /// plus one cross pass, for drift checks and offline use, not a per-query
  /// pin; sharded queries pin views (see view()) instead and ignore
  /// Request::snap.
  [[nodiscard]] SnapshotPtr snapshot() const;

  /// Pins the latest per-shard snapshots into one ShardView (cheap: N
  /// atomic loads). Pass it via Request to answer several sharded queries
  /// against one frozen view. Single-shard services accept it too.
  [[nodiscard]] shard::ShardViewPtr view() const { return store_.view(); }

  /// Ξ_G of the pinned epoch. Single-shard: O(1), maintained incrementally
  /// by the writer, never queued, never degraded. Sharded: Σ shard-local
  /// counts plus the cross-shard correction — a real scatter query that
  /// caches per view signature and can degrade like any other.
  [[nodiscard]] std::future<QueryResult<count_t>> global_count(
      Request req = {});

  /// Butterflies containing V1 vertex u (tip number). Coalesced: concurrent
  /// same-epoch tip queries share one butterflies_per_v1 pass (per shard,
  /// when sharded — plus one shared cross aggregate per view signature).
  /// Under overload the answer may be kStale (previous epoch / view
  /// generation) or kApprox (sampled); the fidelity tag says which.
  [[nodiscard]] std::future<QueryResult<count_t>> vertex_tip_v1(
      vidx_t u, Request req = {});
  [[nodiscard]] std::future<QueryResult<count_t>> vertex_tip_v2(
      vidx_t v, Request req = {});

  /// Butterflies containing edge (u, v); 0 when the edge is absent at the
  /// pinned epoch. O(Σ_{w∈N(v)} min(deg u, deg w)), no global pass — cheap
  /// enough that shedding answers it inline (exact) rather than degrading.
  /// Sharded: owner-shard support plus the cross-shard term, still inline.
  [[nodiscard]] std::future<QueryResult<count_t>> edge_support(
      vidx_t u, vidx_t v, Request req = {});

  /// The k V1-pairs with the most wedges at the pinned epoch. Degrades to
  /// the previous epoch's (or view generation's) cached list; with no stale
  /// list the future carries OverloadError. Sharded: exact merge of
  /// per-shard top-k lists and the cross-shard pairs.
  [[nodiscard]] std::future<QueryResult<TopPairsPtr>> top_pairs(
      std::size_t k, Request req = {});

  // ---- introspection -----------------------------------------------------

  /// Shard 0's backing store — with one shard, exactly the pre-sharding
  /// store (same epochs, same snapshots), keeping the legacy introspection
  /// surface intact. Throws std::invalid_argument if slot 0 was swapped to
  /// a non-local handle (swap_shard); use shard_store() for those layouts.
  [[nodiscard]] const SnapshotStore& store() const {
    const SnapshotStore* local = store_.local_store(0);
    require(local != nullptr,
            "ButterflyService::store: shard 0 is not a LocalShard (swapped "
            "handle) — use shard_store()");
    return *local;
  }
  /// The sharded store facade (layout, per-shard handles, global version).
  [[nodiscard]] const shard::ShardedSnapshotStore& shard_store()
      const noexcept {
    return store_;
  }
  [[nodiscard]] int shard_count() const noexcept { return shards_; }
  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] const Executor& pool() const noexcept { return pool_; }
  [[nodiscard]] std::size_t queue_depth() const { return pool_.queue_depth(); }
  [[nodiscard]] int thread_count() const noexcept {
    return pool_.thread_count();
  }
  /// p95 of the last kLatencyWindow observed query latencies (µs).
  [[nodiscard]] double latency_p95_us() const;
  /// True when the degradation thresholds are currently crossed — queue
  /// depth, p95 latency, or an SLO error budget burning faster than its
  /// objective allows.
  [[nodiscard]] bool overloaded() const;
  /// Shard-scoped overload: the global verdict OR shard k's own SLO budget
  /// (tracked per shard when shards > 1, so one hot shard degrades only
  /// the queries routed to it).
  [[nodiscard]] bool overloaded(int shard) const;
  /// SLO accounting over the observed latency stream (store-wide).
  [[nodiscard]] const SloTracker& slo() const noexcept { return slo_; }
  /// Per-shard SLO accounting; valid for 0 <= k < shard_count() when
  /// shards > 1 (with one shard the store-wide tracker is the only one).
  [[nodiscard]] const SloTracker& shard_slo(int k) const {
    return *shard_slo_.at(static_cast<std::size_t>(k));
  }

  static constexpr std::size_t kLatencyWindow = 256;

 private:
  using TipVector = std::shared_ptr<const std::vector<count_t>>;
  /// Tip memo key: (shard, epoch, v1_side). Single-shard keys are all
  /// shard 0, preserving the legacy (epoch, side) behavior exactly.
  using TipKey = std::tuple<int, std::uint64_t, bool>;

  std::future<QueryResult<count_t>> vertex_tip(vidx_t vertex, bool v1_side,
                                               Request req);

  // ---- sharded query paths (shards_ > 1 only) ----------------------------
  std::future<QueryResult<count_t>> sharded_global(Request req);
  std::future<QueryResult<count_t>> sharded_tip(vidx_t vertex, bool v1_side,
                                                Request req);
  std::future<QueryResult<count_t>> sharded_edge(vidx_t u, vidx_t v,
                                                 Request req);
  std::future<QueryResult<TopPairsPtr>> sharded_top_pairs(std::size_t k,
                                                          Request req);

  /// The request's pinned view, else the latest.
  [[nodiscard]] shard::ShardViewPtr resolve_view(Request& req) const {
    return req.view ? std::move(req.view) : store_.view();
  }
  /// Index of the composed-answer cache tier (per-shard tiers are 0..S-1).
  [[nodiscard]] std::int32_t view_tier() const noexcept { return shards_; }

  /// Exact sharded support of edge (u, v): owner-shard formula (cached in
  /// the owner's tier) plus the cross-shard term. 0 when the edge is
  /// absent.
  count_t sharded_support(const shard::ShardView& view, int owner, vidx_t u,
                          vidx_t v);

  /// Shard s's top-k list at the view's pinned epoch, from tier s or one
  /// count::top_wedge_pairs_v1 pass.
  TopPairsPtr shard_top_list(const shard::ShardView& view, int s,
                             std::size_t k);

  /// After a shard publish: roll the (cur, prev) view-generation pair and
  /// prune the composed-answer tier down to those two signatures.
  void refresh_view_generation();

  /// Composed-answer probe at the PREVIOUS view generation — the kStale
  /// rung of every sharded ladder. Empty when no older generation exists.
  std::optional<QueryResult<count_t>> stale_view_scalar(QueryKind kind,
                                                        std::int64_t a,
                                                        std::int64_t b);
  std::optional<QueryResult<TopPairsPtr>> stale_view_pairs(std::size_t k);

  /// Sharded degradation ladder for a tip query: previous view
  /// generation's composed answer, then (v1 side) a retained owner-shard
  /// pass plus the freshest completed cross aggregate, then the sampled
  /// estimator on the shard graph(s). `owner` is -1 for the scattered v2
  /// side.
  std::optional<QueryResult<count_t>> degraded_tip_sharded(
      const shard::ShardViewPtr& view, vidx_t vertex, bool v1_side,
      int owner);

  /// The coalescing point: returns the full tip vector for (shard,
  /// snap->epoch, side), computing it at most once per epoch and side. The
  /// token belongs to the request that ends up computing; CancelledError
  /// propagates to every coalesced waiter (each degrades independently).
  /// The computing request's trace context parents the kernel span
  /// (svc.kernel.tip_*), which closes tagged cancelled=true when the token
  /// fires mid-pass.
  TipVector tips_for(int shard, const SnapshotPtr& snap, bool v1_side,
                     const CancelToken& cancel,
                     const obs::TraceContext& trace = {});

  /// Failure-path memo drop for tips_for: erases the (key) entry only if it
  /// still belongs to pass `pass_id`, so a failed pass can never evict a
  /// newer in-flight pass re-inserted under the same key.
  void drop_tip_pass(const TipKey& key, std::uint64_t pass_id);

  /// Degradation ladder for a single-shard tip query: previous-epoch cache
  /// entry, then a retained tip-pass memo from an earlier epoch, then the
  /// sampled estimator on the requested snapshot. Engaged in practice —
  /// the approx rung always produces — but optional so a future rung can
  /// refuse.
  std::optional<QueryResult<count_t>> degraded_tip(const SnapshotPtr& snap,
                                                   vidx_t vertex,
                                                   bool v1_side);

  /// Previous-epoch scalar cache probe (the kStale rung shared by tip and
  /// edge-support queries, single-shard).
  std::optional<QueryResult<count_t>> stale_scalar(const SnapshotPtr& snap,
                                                   QueryKind kind,
                                                   std::int64_t a,
                                                   std::int64_t b);

  /// Most recent completed tip pass on `shard` for `side` strictly before
  /// `before_epoch`, if any memo survives.
  std::optional<std::pair<std::uint64_t, TipVector>> stale_tips(
      int shard, std::uint64_t before_epoch, bool v1_side);

  /// Feeds the p95 ring and the SLO tracker(s) with one completed request;
  /// a non-negative `shard` also feeds that shard's tracker.
  void observe_latency(QueryKind kind, double us, int shard = -1);

  /// Bumps svc.shard.<k>.degraded for a routed query's degrade (no-op for
  /// scattered queries and with metrics off).
  void note_degraded(int shard);
  /// Accounts one answer served with unreachable shards (stale_shards
  /// mask): global degrade counters plus svc.shard.<k>.degraded per set
  /// bit — the circuit breaker's contribution to the degrade telemetry.
  void note_stale_mask(std::uint64_t mask);
  /// Publishes shard k's generation-scoped hit rate to its gauge.
  void publish_shard_gauge(int shard);

  /// The request's own context when it carries one, else a fresh root when
  /// span collection is on and the head-based sampler picks this request,
  /// else an inactive context (all spans inert).
  [[nodiscard]] static obs::TraceContext root_context(const Request& req) {
    if (req.trace.active()) return req.trace;
    if (obs::SpanLog::enabled() && obs::SpanLog::sample())
      return obs::TraceContext::root();
    return {};
  }

  struct TipPass {
    std::shared_future<TipVector> result;
    bool has_joiner = false;  // became a coalesced batch already
    // Identity of the compute that inserted this entry; the failure-path
    // erase in tips_for matches it so a failed pass never evicts a fresh
    // in-flight pass re-inserted under the same key after a memo flush
    // (publish retirement, restore, swap_shard).
    std::uint64_t pass_id = 0;
  };

  int shards_;
  shard::ShardedSnapshotStore store_;
  ResultCache cache_;
  std::uint64_t memo_keep_epochs_;
  std::size_t degrade_queue_depth_;
  double degrade_p95_us_;
  std::int64_t approx_samples_;
  // Cross-shard correction memo, shared by const readers (snapshot()).
  mutable shard::ScatterGather scatter_;
  // Per-shard SLO trackers (empty with one shard); they never bind the
  // global svc.slo.* instruments — slo_ owns those.
  std::vector<std::unique_ptr<SloTracker>> shard_slo_;
  // Bound at construction when metrics are on and shards > 1 (names are
  // per-shard, so the literal-only BFC_* macros don't apply).
  std::vector<obs::Gauge*> shard_hit_gauges_;    // svc.shard.<k>.cache_hit_rate
  std::vector<obs::Counter*> shard_degraded_;    // svc.shard.<k>.degraded
  // The (current, previous) view generations: composed answers cache under
  // cur_sig_; prev_sig_ is the stale rung kept across one publish.
  mutable Mutex view_mu_{"svc.service.view"};
  std::uint64_t cur_sig_ BFC_GUARDED_BY(view_mu_) = 0;
  std::uint64_t cur_version_ BFC_GUARDED_BY(view_mu_) = 0;
  std::uint64_t prev_sig_ BFC_GUARDED_BY(view_mu_) = 0;
  std::uint64_t prev_version_ BFC_GUARDED_BY(view_mu_) = 0;
  Mutex memo_mu_{"svc.service.memo"};
  std::map<TipKey, TipPass> tip_memo_ BFC_GUARDED_BY(memo_mu_);
  std::uint64_t next_tip_pass_ BFC_GUARDED_BY(memo_mu_) = 0;
  mutable Mutex lat_mu_{"svc.service.latency"};
  std::array<double, kLatencyWindow> lat_ring_ BFC_GUARDED_BY(lat_mu_){};
  std::size_t lat_next_ BFC_GUARDED_BY(lat_mu_) = 0;
  std::size_t lat_count_ BFC_GUARDED_BY(lat_mu_) = 0;
  SloTracker slo_;
  Executor pool_;  // last: workers stop before the layers they use die
};

}  // namespace bfc::svc
