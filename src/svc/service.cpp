#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <thread>

#include "chk/checked_math.hpp"
#include "count/approx.hpp"
#include "count/local_counts.hpp"
#include "graph/bipartite_graph.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "obs/trace.hpp"
#include "shard/router.hpp"
#include "shard/transport.hpp"
#include "sparse/ops.hpp"
#include "svc/fault.hpp"
#include "util/timer.hpp"

namespace bfc::svc {
namespace {

template <typename T>
std::future<T> ready_future(T value) {
  std::promise<T> p;
  p.set_value(std::move(value));
  return p.get_future();
}

template <typename T>
std::future<T> overload_future(OverloadError::Reason reason) {
  std::promise<T> p;
  p.set_exception(std::make_exception_ptr(OverloadError(reason)));
  return p.get_future();
}

/// Support of one present edge, Eq. (25) evaluated for a single (u, v):
/// Σ_{w∈N(v)} |N(u)∩N(w)| − deg(u) − deg(v) + 1. No global pass. On a
/// shard graph this is exactly the same-shard part of the support: every
/// edge of u and of its same-shard wedge mates is local to the shard, so
/// the formula is exact over wedge mates the shard owns.
count_t support_of_edge(const graph::BipartiteGraph& g, vidx_t u, vidx_t v) {
  const std::span<const vidx_t> nu = g.neighbors_of_v1(u);
  const std::span<const vidx_t> nv = g.neighbors_of_v2(v);
  count_t sum = 0;
  for (const vidx_t w : nv)
    sum = chk::checked_add(sum, sparse::intersection_size(nu, g.neighbors_of_v1(w)));
  return sum - static_cast<count_t>(nu.size()) -
         static_cast<count_t>(nv.size()) + 1;
}

// Request spans outlive the submitting frame (the exact lambda runs on a
// pool worker, the fallback possibly on a third thread), so they live
// behind a shared_ptr — allocated only when collection is actually on, so
// the disabled path stays allocation-free. Exactly one of the capturing
// closures runs; Span::close() is idempotent and tags on a closed span are
// dropped, so the helpers need no coordination.
using SpanPtr = std::shared_ptr<obs::Span>;

SpanPtr open_span(const obs::TraceContext& ctx, const char* name) {
  if (!obs::SpanLog::enabled() || !ctx.active()) return nullptr;
  return std::make_shared<obs::Span>(ctx, name);
}

void span_tag(const SpanPtr& span, const char* key, std::string_view value) {
  if (span) span->tag(key, value);
}

obs::TraceContext span_ctx(const SpanPtr& span) {
  return span ? span->context() : obs::TraceContext{};
}

void span_close(const SpanPtr& span) {
  if (span) span->close();
}

std::array<SloPolicy, kQueryKinds> slo_policies(const ServiceOptions& o) {
  std::array<SloPolicy, kQueryKinds> policies;
  for (std::size_t k = 0; k < kQueryKinds; ++k)
    policies[k] = SloPolicy{o.slo_target_us[k], o.slo_objective};
  return policies;
}

}  // namespace

ButterflyService::ButterflyService(vidx_t n1, vidx_t n2,
                                   ServiceOptions options)
    : shards_(options.shards),
      store_(n1, n2, options.shards),
      // One tier per shard plus the composed-answer tier. Single-shard
      // services only ever touch tier 0 (and invalidate across all tiers),
      // so the extra empty tier changes nothing.
      cache_(options.cache_capacity, options.shards + 1),
      memo_keep_epochs_(options.memo_keep_epochs),
      degrade_queue_depth_(options.degrade_queue_depth),
      degrade_p95_us_(options.degrade_p95_us),
      approx_samples_(options.approx_samples),
      slo_(slo_policies(options), kLatencyWindow),
      pool_(ExecutorOptions{options.threads, options.max_queue,
                            options.shed_policy}) {
  require(options.memo_keep_epochs >= 1,
          "ButterflyService: memo_keep_epochs must be >= 1");
  require(options.approx_samples >= 1,
          "ButterflyService: approx_samples must be >= 1");
  if (shards_ > 1) {
    shard_slo_.reserve(static_cast<std::size_t>(shards_));
    for (int k = 0; k < shards_; ++k)
      shard_slo_.push_back(std::make_unique<SloTracker>(
          slo_policies(options), kLatencyWindow, /*bind_metrics=*/false));
    if constexpr (obs::kMetricsEnabled) {
      auto& reg = obs::Registry::instance();
      shard_hit_gauges_.assign(static_cast<std::size_t>(shards_), nullptr);
      shard_degraded_.assign(static_cast<std::size_t>(shards_), nullptr);
      for (int k = 0; k < shards_; ++k) {
        const std::string prefix = "svc.shard." + std::to_string(k);
        const auto kk = static_cast<std::size_t>(k);
        shard_hit_gauges_[kk] = &reg.gauge(prefix + ".cache_hit_rate");
        shard_degraded_[kk] = &reg.counter(prefix + ".degraded");
      }
    }
  }
  const shard::ShardViewPtr v = store_.view();
  const MutexLock lock(view_mu_);
  cur_sig_ = prev_sig_ = v->signature;
  cur_version_ = prev_version_ = v->version;
}

PublishResult ButterflyService::apply_updates(
    std::span<const EdgeUpdate> batch) {
  if (shards_ == 1) {
    // Straight to shard 0 so the returned epoch is the SHARD epoch — the
    // pre-sharding contract (the global version can drift from it after a
    // restore, which resets shard epochs but not the publish counter).
    const PublishResult result = store_.apply_to_shard(0, batch);
    obs::FlightRecorder::record("publish", "",
                                static_cast<std::int64_t>(result.epoch),
                                static_cast<std::int64_t>(result.applied));
    // Entries are epoch-keyed so none could serve a wrong answer; keep the
    // just-retired epoch as the stale-answer tier and drop everything older.
    cache_.invalidate_older_than(result.epoch == 0 ? 0 : result.epoch - 1);
    {
      const MutexLock lock(memo_mu_);
      std::erase_if(tip_memo_, [&](const auto& entry) {
        return std::get<1>(entry.first) + memo_keep_epochs_ <= result.epoch;
      });
    }
    return result;
  }
  // Route by V1 owner and publish shard by shard — the single-writer
  // convenience path over the same machinery concurrent writers use.
  const shard::ShardRouter router(store_.partition());
  const auto buckets = router.bucket(batch);
  PublishResult total{};
  for (int k = 0; k < shards_; ++k) {
    const auto& sub = buckets[static_cast<std::size_t>(k)];
    if (sub.empty()) continue;  // untouched shards do not publish
    const PublishResult r = apply_updates_shard(k, sub);
    total.applied += r.applied;
    total.ignored += r.ignored;
    total.created = chk::checked_add(total.created, r.created);
    total.destroyed = chk::checked_add(total.destroyed, r.destroyed);
  }
  // Per-shard epochs advance independently; the store's global version is
  // the only scalar that means "after this whole batch".
  total.epoch = store_.version();
  return total;
}

PublishResult ButterflyService::apply_updates_shard(
    int k, std::span<const EdgeUpdate> batch) {
  require(k >= 0 && k < shards_, "apply_updates_shard: shard out of range");
  if (shards_ == 1) return apply_updates(batch);
  const PublishResult result = store_.apply_to_shard(k, batch);
  obs::FlightRecorder::record("publish", "",
                              static_cast<std::int64_t>(result.epoch),
                              static_cast<std::int64_t>(result.applied));
  // Only shard k's tier retires; the other shards' entries stay keyed by
  // their own (unchanged) epochs with their hit streaks intact — the point
  // of running one cache tier per shard.
  cache_.invalidate_tier_older_than(k,
                                    result.epoch == 0 ? 0 : result.epoch - 1);
  publish_shard_gauge(k);
  {
    const MutexLock lock(memo_mu_);
    std::erase_if(tip_memo_, [&](const auto& entry) {
      return std::get<0>(entry.first) == k &&
             std::get<1>(entry.first) + memo_keep_epochs_ <= result.epoch;
    });
  }
  refresh_view_generation();
  return result;
}

void ButterflyService::refresh_view_generation() {
  const shard::ShardViewPtr v = store_.view();  // pin BEFORE locking
  std::array<std::uint64_t, 2> keep{};
  {
    const MutexLock lock(view_mu_);
    // A concurrent writer may have rolled the pair past this publish's
    // signature already; the pair only ever needs to be "two recent
    // signatures" (signature-keyed entries can never be wrong, only
    // unreachable), so skipping is harmless.
    if (v->signature == cur_sig_) return;
    prev_sig_ = cur_sig_;
    prev_version_ = cur_version_;
    cur_sig_ = v->signature;
    cur_version_ = v->version;
    keep = {cur_sig_, prev_sig_};
  }
  cache_.invalidate_tier_keep(view_tier(), keep);
}

void ButterflyService::persist(const std::string& path) const {
  try {
    store_.persist(path);
  } catch (...) {
    obs::FlightRecorder::dump_on_fault("persist failed");
    throw;
  }
  obs::FlightRecorder::record("persist", path.c_str(),
                              static_cast<std::int64_t>(store_.epoch()));
}

void ButterflyService::restore(const std::string& path) {
  try {
    store_.restore(path);  // throws on corruption, store unchanged
  } catch (...) {
    obs::FlightRecorder::dump_on_fault("restore failed");
    throw;
  }
  obs::FlightRecorder::record("restore", path.c_str(),
                              static_cast<std::int64_t>(store_.epoch()));
  // The epoch sequence restarted: every cached/memoised answer is keyed by
  // epochs that no longer mean anything. That includes the cross-aggregate
  // memo — its view signatures hash per-shard epochs, so a post-restore
  // update stream could re-reach a memoised epoch vector with different
  // graph content and serve a pre-restore aggregate as kExact.
  cache_.invalidate_all();
  scatter_.clear();
  {
    const MutexLock lock(memo_mu_);
    tip_memo_.clear();
  }
  const shard::ShardViewPtr v = store_.view();
  const MutexLock lock(view_mu_);
  // cur == prev: no previous generation — the stale-view rung stays empty
  // until the first post-restore publish.
  cur_sig_ = prev_sig_ = v->signature;
  cur_version_ = prev_version_ = v->version;
}

void ButterflyService::swap_shard(int k, shard::ShardHandlePtr handle) {
  store_.swap_shard(k, std::move(handle));
  // The new handle's epoch sequence need not extend the old one (a remote
  // host starts at its own epoch), so every epoch/signature-keyed tier is
  // meaningless — same flush discipline as restore().
  cache_.invalidate_all();
  scatter_.clear();
  {
    const MutexLock lock(memo_mu_);
    tip_memo_.clear();
  }
  const shard::ShardViewPtr v = store_.view();
  const MutexLock lock(view_mu_);
  cur_sig_ = prev_sig_ = v->signature;
  cur_version_ = prev_version_ = v->version;
}

SnapshotPtr ButterflyService::snapshot() const {
  if (shards_ == 1) return store_.shard_snapshot(0);
  // Materialise the union graph of one pinned view. Owned ranges are
  // disjoint, so concatenating each shard's owned rows rebuilds the exact
  // single-store edge set; the count is Σ locals + cross — the identity the
  // drift checks verify.
  const shard::ShardViewPtr view = store_.view();
  const shard::RangePartition& part = store_.partition();
  std::vector<std::pair<vidx_t, vidx_t>> edges;
  edges.reserve(static_cast<std::size_t>(view->edges()));
  for (int k = 0; k < view->shard_count(); ++k) {
    const graph::BipartiteGraph& g =
        view->shards[static_cast<std::size_t>(k)]->graph;
    for (vidx_t u = part.begin(k); u < part.end(k); ++u)
      for (const vidx_t v : g.neighbors_of_v1(u)) edges.emplace_back(u, v);
  }
  const shard::CrossAggregatePtr agg = scatter_.cross(view);
  GraphSnapshot snap;
  snap.epoch = view->version;
  snap.graph =
      graph::BipartiteGraph::from_edges(store_.n1(), store_.n2(), edges);
  snap.butterflies = shard::ScatterGather::global_count(*view, *agg);
  snap.edges = view->edges();
  return std::make_shared<const GraphSnapshot>(std::move(snap));
}

std::future<QueryResult<count_t>> ButterflyService::global_count(Request req) {
  if (shards_ > 1) return sharded_global(std::move(req));
  obs::Span span(root_context(req), "svc.query.global");
  SnapshotPtr snap = req.snap ? std::move(req.snap) : store_.shard_snapshot(0);
  BFC_COUNT_ADD("svc.queries", 1);
  // Maintained incrementally by the writer: answering is one field read.
  BFC_HIST_OBSERVE("svc.latency_us.global", 0);
  observe_latency(QueryKind::kGlobalCount, 0.0);
  span.tag("epoch", std::to_string(snap->epoch));
  span.tag("outcome", "exact");
  return ready_future(
      QueryResult<count_t>{snap->butterflies, snap->epoch, Fidelity::kExact});
}

std::future<QueryResult<count_t>> ButterflyService::vertex_tip_v1(
    vidx_t u, Request req) {
  require(u >= 0 && u < store_.n1(), "vertex_tip_v1: vertex out of range");
  if (shards_ > 1) return sharded_tip(u, /*v1_side=*/true, std::move(req));
  return vertex_tip(u, /*v1_side=*/true, std::move(req));
}

std::future<QueryResult<count_t>> ButterflyService::vertex_tip_v2(
    vidx_t v, Request req) {
  require(v >= 0 && v < store_.n2(), "vertex_tip_v2: vertex out of range");
  if (shards_ > 1) return sharded_tip(v, /*v1_side=*/false, std::move(req));
  return vertex_tip(v, /*v1_side=*/false, std::move(req));
}

std::future<QueryResult<count_t>> ButterflyService::vertex_tip(vidx_t vertex,
                                                               bool v1_side,
                                                               Request req) {
  const QueryKind kind =
      v1_side ? QueryKind::kVertexTipV1 : QueryKind::kVertexTipV2;
  SnapshotPtr snap = req.snap ? std::move(req.snap) : store_.shard_snapshot(0);
  BFC_COUNT_ADD("svc.queries", 1);
  const SpanPtr span = open_span(
      root_context(req), v1_side ? "svc.query.tip_v1" : "svc.query.tip_v2");
  span_tag(span, "epoch", std::to_string(snap->epoch));
  const CacheKey key{snap->epoch, kind, vertex, 0};
  if (const auto hit = cache_.get(key)) {
    if (v1_side)
      BFC_HIST_OBSERVE("svc.latency_us.tip_v1", 0);
    else
      BFC_HIST_OBSERVE("svc.latency_us.tip_v2", 0);
    observe_latency(kind, 0.0);
    span_tag(span, "cache", "hit");
    span_tag(span, "outcome", "exact");
    return ready_future(QueryResult<count_t>{std::get<count_t>(*hit),
                                             snap->epoch, Fidelity::kExact});
  }
  span_tag(span, "cache", "miss");
  // Rung 0 of the ladder: already drowning — answer degraded right now
  // instead of queueing exact work nobody can afford.
  if (overloaded()) {
    if (auto d = degraded_tip(snap, vertex, v1_side)) {
      span_tag(span, "degrade", "admission");
      span_tag(span, "outcome", fidelity_name(d->fidelity));
      return ready_future(std::move(*d));
    }
  }
  auto fallback = [this, snap, vertex, v1_side, span] {
    auto d = degraded_tip(snap, vertex, v1_side);
    span_tag(span, "degrade", "abandoned");
    span_tag(span, "outcome", d ? fidelity_name(d->fidelity) : "shed");
    span_close(span);
    return d;
  };
  auto exact = [this, snap, key, vertex, v1_side, deadline = req.deadline,
                span, trace = span_ctx(span), timer = Timer()] {
    try {
      const TipVector tips =
          tips_for(0, snap, v1_side, deadline.token(), trace);
      const count_t value = (*tips)[static_cast<std::size_t>(vertex)];
      cache_.put(key, value);
      const double us = timer.seconds() * 1e6;
      if (v1_side)
        BFC_HIST_OBSERVE("svc.latency_us.tip_v1", us);
      else
        BFC_HIST_OBSERVE("svc.latency_us.tip_v2", us);
      observe_latency(v1_side ? QueryKind::kVertexTipV1
                              : QueryKind::kVertexTipV2,
                      us);
      span_tag(span, "outcome", "exact");
      span_close(span);
      return QueryResult<count_t>{value, snap->epoch, Fidelity::kExact};
    } catch (const CancelledError&) {
      // The deadline fired mid-pass; the kernel gave up cooperatively.
      BFC_COUNT_ADD("svc.kernels_cancelled", 1);
      span_tag(span, "cancelled", "true");
      if (auto d = degraded_tip(snap, vertex, v1_side)) {
        span_tag(span, "outcome", fidelity_name(d->fidelity));
        span_close(span);
        return std::move(*d);
      }
      span_tag(span, "outcome", "shed");
      span_close(span);
      throw OverloadError(OverloadError::Reason::kDeadline);
    }
  };
  if (auto fut = pool_.try_submit(std::move(exact), req.deadline,
                                  std::move(fallback), span_ctx(span)))
    return std::move(*fut);
  // Refused at admission: degrade on the caller's thread.
  span_tag(span, "rejected", "true");
  if (auto d = degraded_tip(snap, vertex, v1_side)) {
    span_tag(span, "outcome", fidelity_name(d->fidelity));
    return ready_future(std::move(*d));
  }
  span_tag(span, "outcome", "shed");
  return overload_future<QueryResult<count_t>>(
      OverloadError::Reason::kRejected);
}

std::future<QueryResult<count_t>> ButterflyService::edge_support(vidx_t u,
                                                                 vidx_t v,
                                                                 Request req) {
  require(u >= 0 && u < store_.n1() && v >= 0 && v < store_.n2(),
          "edge_support: vertex out of range");
  if (shards_ > 1) return sharded_edge(u, v, std::move(req));
  SnapshotPtr snap = req.snap ? std::move(req.snap) : store_.shard_snapshot(0);
  BFC_COUNT_ADD("svc.queries", 1);
  const SpanPtr span = open_span(root_context(req), "svc.query.edge");
  span_tag(span, "epoch", std::to_string(snap->epoch));
  const CacheKey key{snap->epoch, QueryKind::kEdgeSupport, u, v};
  if (const auto hit = cache_.get(key)) {
    BFC_HIST_OBSERVE("svc.latency_us.edge", 0);
    observe_latency(QueryKind::kEdgeSupport, 0.0);
    span_tag(span, "cache", "hit");
    span_tag(span, "outcome", "exact");
    return ready_future(QueryResult<count_t>{std::get<count_t>(*hit),
                                             snap->epoch, Fidelity::kExact});
  }
  span_tag(span, "cache", "miss");
  // Shed/overload path: previous epoch's cached support, else the exact
  // one-edge computation inline — it is one row scan, cheap enough to run
  // on the shedding thread rather than give up fidelity.
  auto inline_answer = [this, snap, key, u, v,
                        span]() -> std::optional<QueryResult<count_t>> {
    if (auto stale = stale_scalar(snap, QueryKind::kEdgeSupport, u, v)) {
      BFC_COUNT_ADD("svc.degraded", 1);
      BFC_COUNT_ADD("svc.stale_answers", 1);
      span_tag(span, "outcome", "stale");
      span_close(span);
      return stale;
    }
    const count_t value =
        snap->graph.has_edge(u, v) ? support_of_edge(snap->graph, u, v) : 0;
    cache_.put(key, value);
    BFC_COUNT_ADD("svc.inline_answers", 1);
    span_tag(span, "inline", "true");
    span_tag(span, "outcome", "exact");
    span_close(span);
    return QueryResult<count_t>{value, snap->epoch, Fidelity::kExact};
  };
  if (overloaded()) {
    span_tag(span, "degrade", "admission");
    return ready_future(std::move(*inline_answer()));
  }
  auto exact = [this, snap, key, u, v, span, timer = Timer()] {
    const count_t value =
        snap->graph.has_edge(u, v) ? support_of_edge(snap->graph, u, v) : 0;
    cache_.put(key, value);
    const double us = timer.seconds() * 1e6;
    BFC_HIST_OBSERVE("svc.latency_us.edge", us);
    observe_latency(QueryKind::kEdgeSupport, us);
    span_tag(span, "outcome", "exact");
    span_close(span);
    return QueryResult<count_t>{value, snap->epoch, Fidelity::kExact};
  };
  if (auto fut = pool_.try_submit(std::move(exact), req.deadline,
                                  inline_answer, span_ctx(span)))
    return std::move(*fut);
  span_tag(span, "rejected", "true");
  return ready_future(std::move(*inline_answer()));
}

std::future<QueryResult<TopPairsPtr>> ButterflyService::top_pairs(
    std::size_t k, Request req) {
  if (shards_ > 1) return sharded_top_pairs(k, std::move(req));
  SnapshotPtr snap = req.snap ? std::move(req.snap) : store_.shard_snapshot(0);
  BFC_COUNT_ADD("svc.queries", 1);
  const SpanPtr span = open_span(root_context(req), "svc.query.top_pairs");
  span_tag(span, "epoch", std::to_string(snap->epoch));
  const CacheKey key{snap->epoch, QueryKind::kTopPairs,
                     static_cast<std::int64_t>(k), 0};
  if (const auto hit = cache_.get(key)) {
    BFC_HIST_OBSERVE("svc.latency_us.top_pairs", 0);
    observe_latency(QueryKind::kTopPairs, 0.0);
    span_tag(span, "cache", "hit");
    span_tag(span, "outcome", "exact");
    return ready_future(QueryResult<TopPairsPtr>{
        std::get<TopPairsPtr>(*hit), snap->epoch, Fidelity::kExact});
  }
  span_tag(span, "cache", "miss");
  // Only stale rung: there is no cheap sampled substitute for an exact
  // top-k list, so with no previous-epoch list the query is shed outright.
  auto stale_pairs = [this, snap, k,
                      span]() -> std::optional<QueryResult<TopPairsPtr>> {
    if (snap->epoch == 0) return std::nullopt;
    const CacheKey prev{snap->epoch - 1, QueryKind::kTopPairs,
                        static_cast<std::int64_t>(k), 0};
    const auto hit = cache_.get(prev);
    if (!hit) return std::nullopt;
    BFC_COUNT_ADD("svc.degraded", 1);
    BFC_COUNT_ADD("svc.stale_answers", 1);
    span_tag(span, "outcome", "stale");
    span_close(span);
    return QueryResult<TopPairsPtr>{std::get<TopPairsPtr>(*hit),
                                    snap->epoch - 1, Fidelity::kStale};
  };
  if (overloaded()) {
    if (auto d = stale_pairs()) {
      span_tag(span, "degrade", "admission");
      return ready_future(std::move(*d));
    }
  }
  auto exact = [this, snap, key, k, span, timer = Timer()] {
    auto pairs = std::make_shared<const std::vector<count::VertexPair>>(
        count::top_wedge_pairs_v1(snap->graph, k));
    cache_.put(key, CacheValue{pairs});
    const double us = timer.seconds() * 1e6;
    BFC_HIST_OBSERVE("svc.latency_us.top_pairs", us);
    observe_latency(QueryKind::kTopPairs, us);
    span_tag(span, "outcome", "exact");
    span_close(span);
    return QueryResult<TopPairsPtr>{TopPairsPtr(pairs), snap->epoch,
                                    Fidelity::kExact};
  };
  if (auto fut = pool_.try_submit(std::move(exact), req.deadline, stale_pairs,
                                  span_ctx(span)))
    return std::move(*fut);
  span_tag(span, "rejected", "true");
  if (auto d = stale_pairs()) return ready_future(std::move(*d));
  span_tag(span, "outcome", "shed");
  return overload_future<QueryResult<TopPairsPtr>>(
      OverloadError::Reason::kRejected);
}

// ---- sharded query paths ---------------------------------------------------

std::future<QueryResult<count_t>> ButterflyService::sharded_global(
    Request req) {
  shard::ShardViewPtr view = resolve_view(req);
  BFC_COUNT_ADD("svc.queries", 1);
  BFC_COUNT_ADD("svc.scatter_queries", 1);
  const SpanPtr span = open_span(root_context(req), "svc.query.global");
  span_tag(span, "sig", std::to_string(view->signature));
  // Partial-result contract: a scatter query folds every range in, so any
  // unreachable shard (its snapshot is the last known epoch, not a fresh
  // pin) downgrades the whole answer to kStale with the per-shard bits in
  // stale_shards. The VALUE is still exact for the pinned epoch vector —
  // only freshness is in question.
  const std::uint64_t qmask = view->stale_mask;
  const Fidelity base_fid = qmask ? Fidelity::kStale : Fidelity::kExact;
  const char* base_outcome = qmask ? "stale" : "exact";
  const CacheKey key{view->signature, QueryKind::kGlobalCount, 0, 0,
                     view_tier()};
  if (const auto hit = cache_.get(key)) {
    BFC_HIST_OBSERVE("svc.latency_us.global", 0);
    observe_latency(QueryKind::kGlobalCount, 0.0);
    if (qmask) note_stale_mask(qmask);
    span_tag(span, "cache", "hit");
    span_tag(span, "outcome", base_outcome);
    return ready_future(QueryResult<count_t>{
        std::get<count_t>(*hit), view->version, base_fid, qmask});
  }
  span_tag(span, "cache", "miss");
  auto degraded = [this, view, span]() -> std::optional<QueryResult<count_t>> {
    // Rung 1: the previous view generation's composed answer.
    if (auto stale = stale_view_scalar(QueryKind::kGlobalCount, 0, 0)) {
      BFC_COUNT_ADD("svc.degraded", 1);
      BFC_COUNT_ADD("svc.stale_answers", 1);
      span_tag(span, "outcome", "stale");
      span_close(span);
      return stale;
    }
    // Rung 2: the freshest COMPLETED cross aggregate of any signature plus
    // the pinned locals — mixed freshness, honestly tagged stale.
    if (auto agg = scatter_.latest_ready()) {
      BFC_COUNT_ADD("svc.degraded", 1);
      BFC_COUNT_ADD("svc.stale_answers", 1);
      span_tag(span, "outcome", "stale");
      span_close(span);
      return QueryResult<count_t>{
          chk::checked_add(view->local_butterflies(), (*agg)->butterflies),
          view->version, Fidelity::kStale};
    }
    return std::nullopt;
  };
  if (overloaded()) {
    if (auto d = degraded()) {
      span_tag(span, "degrade", "admission");
      return ready_future(std::move(*d));
    }
  }
  auto fallback = [degraded, span] {
    span_tag(span, "degrade", "abandoned");
    auto d = degraded();
    if (!d) {
      span_tag(span, "outcome", "shed");
      span_close(span);
    }
    return d;
  };
  auto exact = [this, view, key, degraded, qmask, base_fid, base_outcome,
                deadline = req.deadline, span, trace = span_ctx(span),
                timer = Timer()] {
    try {
      const shard::CrossAggregatePtr agg =
          scatter_.cross(view, deadline.token(), trace);
      const count_t value = shard::ScatterGather::global_count(*view, *agg);
      cache_.put(key, value);
      const double us = timer.seconds() * 1e6;
      BFC_HIST_OBSERVE("svc.latency_us.global", us);
      observe_latency(QueryKind::kGlobalCount, us);
      if (qmask) note_stale_mask(qmask);
      span_tag(span, "outcome", base_outcome);
      span_close(span);
      return QueryResult<count_t>{value, view->version, base_fid, qmask};
    } catch (const CancelledError&) {
      BFC_COUNT_ADD("svc.kernels_cancelled", 1);
      span_tag(span, "cancelled", "true");
      if (auto d = degraded()) return std::move(*d);
      span_tag(span, "outcome", "shed");
      span_close(span);
      throw OverloadError(OverloadError::Reason::kDeadline);
    } catch (const shard::ShardUnavailableError&) {
      // A cross-process leg died mid-compute: same ladder as a deadline
      // trip — the range isolation contract forbids failing the query.
      BFC_COUNT_ADD("svc.kernels_cancelled", 1);
      span_tag(span, "cancelled", "true");
      if (auto d = degraded()) return std::move(*d);
      span_tag(span, "outcome", "shed");
      span_close(span);
      throw OverloadError(OverloadError::Reason::kDeadline);
    }
  };
  if (auto fut = pool_.try_submit(std::move(exact), req.deadline,
                                  std::move(fallback), span_ctx(span)))
    return std::move(*fut);
  span_tag(span, "rejected", "true");
  if (auto d = degraded()) return ready_future(std::move(*d));
  span_tag(span, "outcome", "shed");
  return overload_future<QueryResult<count_t>>(
      OverloadError::Reason::kRejected);
}

std::future<QueryResult<count_t>> ButterflyService::sharded_tip(
    vidx_t vertex, bool v1_side, Request req) {
  const QueryKind kind =
      v1_side ? QueryKind::kVertexTipV1 : QueryKind::kVertexTipV2;
  shard::ShardViewPtr view = resolve_view(req);
  // tip_v1 routes to the owner shard; tip_v2 scatters over all of them.
  const int owner = v1_side ? store_.partition().owner(vertex) : -1;
  BFC_COUNT_ADD("svc.queries", 1);
  if (!v1_side) BFC_COUNT_ADD("svc.scatter_queries", 1);
  const SpanPtr span = open_span(
      root_context(req), v1_side ? "svc.query.tip_v1" : "svc.query.tip_v2");
  span_tag(span, "sig", std::to_string(view->signature));
  if (owner >= 0) span_tag(span, "shard", std::to_string(owner));
  // Routed (tip_v1): stale only when the OWNER range is dark — a dead
  // shard can take no publishes, so every other range's answer is exact
  // for the pinned view (the per-vertex locality argument). Scattered
  // (tip_v2): any dark shard taints the whole sum.
  const std::uint64_t qmask =
      v1_side ? (view->stale_mask &
                 (owner < 64 ? std::uint64_t{1} << owner : 0u))
              : view->stale_mask;
  const Fidelity base_fid = qmask ? Fidelity::kStale : Fidelity::kExact;
  const char* base_outcome = qmask ? "stale" : "exact";
  const CacheKey key{view->signature, kind, vertex, 0, view_tier()};
  if (const auto hit = cache_.get(key)) {
    if (v1_side)
      BFC_HIST_OBSERVE("svc.latency_us.tip_v1", 0);
    else
      BFC_HIST_OBSERVE("svc.latency_us.tip_v2", 0);
    observe_latency(kind, 0.0, owner);
    if (qmask) note_stale_mask(qmask);
    span_tag(span, "cache", "hit");
    span_tag(span, "outcome", base_outcome);
    return ready_future(QueryResult<count_t>{
        std::get<count_t>(*hit), view->version, base_fid, qmask});
  }
  span_tag(span, "cache", "miss");
  auto degraded = [this, view, vertex, v1_side, owner, span] {
    auto d = degraded_tip_sharded(view, vertex, v1_side, owner);
    if (d) {
      span_tag(span, "outcome", fidelity_name(d->fidelity));
      span_close(span);
    }
    return d;
  };
  if (overloaded(owner)) {
    if (auto d = degraded()) {
      span_tag(span, "degrade", "admission");
      return ready_future(std::move(*d));
    }
  }
  auto fallback = [degraded, span] {
    span_tag(span, "degrade", "abandoned");
    auto d = degraded();
    if (!d) {
      span_tag(span, "outcome", "shed");
      span_close(span);
    }
    return d;
  };
  auto exact = [this, view, key, kind, vertex, v1_side, owner, degraded,
                qmask, base_fid, base_outcome, deadline = req.deadline, span,
                trace = span_ctx(span), timer = Timer()] {
    try {
      const shard::CrossAggregatePtr agg =
          scatter_.cross(view, deadline.token(), trace);
      count_t value = v1_side ? agg->tip_v1(vertex) : agg->tip_v2(vertex);
      if (v1_side) {
        // Local part lives wholly on the owner shard.
        const SnapshotPtr& snap =
            view->shards[static_cast<std::size_t>(owner)];
        const TipVector tips =
            tips_for(owner, snap, true, deadline.token(), trace);
        value = chk::checked_add(value,
                                 (*tips)[static_cast<std::size_t>(vertex)]);
      } else {
        // Every shard sees some of v's butterflies; their tips sum.
        for (int s = 0; s < view->shard_count(); ++s) {
          const TipVector tips =
              tips_for(s, view->shards[static_cast<std::size_t>(s)], false,
                       deadline.token(), trace);
          value = chk::checked_add(value,
                                   (*tips)[static_cast<std::size_t>(vertex)]);
        }
      }
      cache_.put(key, value);
      const double us = timer.seconds() * 1e6;
      if (v1_side)
        BFC_HIST_OBSERVE("svc.latency_us.tip_v1", us);
      else
        BFC_HIST_OBSERVE("svc.latency_us.tip_v2", us);
      observe_latency(kind, us, owner);
      if (qmask) note_stale_mask(qmask);
      span_tag(span, "outcome", base_outcome);
      span_close(span);
      return QueryResult<count_t>{value, view->version, base_fid, qmask};
    } catch (const CancelledError&) {
      BFC_COUNT_ADD("svc.kernels_cancelled", 1);
      span_tag(span, "cancelled", "true");
      if (auto d = degraded()) return std::move(*d);
      span_tag(span, "outcome", "shed");
      span_close(span);
      throw OverloadError(OverloadError::Reason::kDeadline);
    } catch (const shard::ShardUnavailableError&) {
      BFC_COUNT_ADD("svc.kernels_cancelled", 1);
      span_tag(span, "cancelled", "true");
      if (auto d = degraded()) return std::move(*d);
      span_tag(span, "outcome", "shed");
      span_close(span);
      throw OverloadError(OverloadError::Reason::kDeadline);
    }
  };
  if (auto fut = pool_.try_submit(std::move(exact), req.deadline,
                                  std::move(fallback), span_ctx(span)))
    return std::move(*fut);
  span_tag(span, "rejected", "true");
  if (auto d = degraded()) return ready_future(std::move(*d));
  span_tag(span, "outcome", "shed");
  return overload_future<QueryResult<count_t>>(
      OverloadError::Reason::kRejected);
}

std::future<QueryResult<count_t>> ButterflyService::sharded_edge(
    vidx_t u, vidx_t v, Request req) {
  shard::ShardViewPtr view = resolve_view(req);
  const int owner = store_.partition().owner(u);
  BFC_COUNT_ADD("svc.queries", 1);
  const SpanPtr span = open_span(root_context(req), "svc.query.edge");
  span_tag(span, "sig", std::to_string(view->signature));
  span_tag(span, "shard", std::to_string(owner));
  // Routed query: only the owner range's darkness taints the answer (see
  // sharded_tip).
  const std::uint64_t qmask =
      view->stale_mask & (owner < 64 ? std::uint64_t{1} << owner : 0u);
  const Fidelity base_fid = qmask ? Fidelity::kStale : Fidelity::kExact;
  const char* base_outcome = qmask ? "stale" : "exact";
  const CacheKey key{view->signature, QueryKind::kEdgeSupport, u, v,
                     view_tier()};
  if (const auto hit = cache_.get(key)) {
    BFC_HIST_OBSERVE("svc.latency_us.edge", 0);
    observe_latency(QueryKind::kEdgeSupport, 0.0, owner);
    if (qmask) note_stale_mask(qmask);
    span_tag(span, "cache", "hit");
    span_tag(span, "outcome", base_outcome);
    return ready_future(QueryResult<count_t>{
        std::get<count_t>(*hit), view->version, base_fid, qmask});
  }
  span_tag(span, "cache", "miss");
  // Same contract as single-shard: support is one row scan per shard, cheap
  // enough to answer inline (exact) when shedding.
  auto inline_answer = [this, view, key, owner, u, v, qmask, base_fid,
                        base_outcome,
                        span]() -> std::optional<QueryResult<count_t>> {
    if (auto stale = stale_view_scalar(QueryKind::kEdgeSupport, u, v)) {
      BFC_COUNT_ADD("svc.degraded", 1);
      BFC_COUNT_ADD("svc.stale_answers", 1);
      note_degraded(owner);
      span_tag(span, "outcome", "stale");
      span_close(span);
      return stale;
    }
    const count_t value = sharded_support(*view, owner, u, v);
    cache_.put(key, value);
    BFC_COUNT_ADD("svc.inline_answers", 1);
    if (qmask) note_stale_mask(qmask);
    span_tag(span, "inline", "true");
    span_tag(span, "outcome", base_outcome);
    span_close(span);
    return QueryResult<count_t>{value, view->version, base_fid, qmask};
  };
  if (overloaded(owner)) {
    span_tag(span, "degrade", "admission");
    return ready_future(std::move(*inline_answer()));
  }
  auto exact = [this, view, key, owner, u, v, qmask, base_fid, base_outcome,
                span, timer = Timer()] {
    const count_t value = sharded_support(*view, owner, u, v);
    cache_.put(key, value);
    const double us = timer.seconds() * 1e6;
    BFC_HIST_OBSERVE("svc.latency_us.edge", us);
    observe_latency(QueryKind::kEdgeSupport, us, owner);
    if (qmask) note_stale_mask(qmask);
    span_tag(span, "outcome", base_outcome);
    span_close(span);
    return QueryResult<count_t>{value, view->version, base_fid, qmask};
  };
  if (auto fut = pool_.try_submit(std::move(exact), req.deadline,
                                  inline_answer, span_ctx(span)))
    return std::move(*fut);
  span_tag(span, "rejected", "true");
  return ready_future(std::move(*inline_answer()));
}

std::future<QueryResult<TopPairsPtr>> ButterflyService::sharded_top_pairs(
    std::size_t k, Request req) {
  shard::ShardViewPtr view = resolve_view(req);
  BFC_COUNT_ADD("svc.queries", 1);
  BFC_COUNT_ADD("svc.scatter_queries", 1);
  const SpanPtr span = open_span(root_context(req), "svc.query.top_pairs");
  span_tag(span, "sig", std::to_string(view->signature));
  // Scatter query: any dark shard taints the merged list (see
  // sharded_global).
  const std::uint64_t qmask = view->stale_mask;
  const Fidelity base_fid = qmask ? Fidelity::kStale : Fidelity::kExact;
  const char* base_outcome = qmask ? "stale" : "exact";
  const CacheKey key{view->signature, QueryKind::kTopPairs,
                     static_cast<std::int64_t>(k), 0, view_tier()};
  if (const auto hit = cache_.get(key)) {
    BFC_HIST_OBSERVE("svc.latency_us.top_pairs", 0);
    observe_latency(QueryKind::kTopPairs, 0.0);
    if (qmask) note_stale_mask(qmask);
    span_tag(span, "cache", "hit");
    span_tag(span, "outcome", base_outcome);
    return ready_future(QueryResult<TopPairsPtr>{
        std::get<TopPairsPtr>(*hit), view->version, base_fid, qmask});
  }
  span_tag(span, "cache", "miss");
  // Only stale rung, as in single-shard mode: no cheap sampled substitute
  // exists for an exact merged top-k list.
  auto stale_pairs = [this, k,
                      span]() -> std::optional<QueryResult<TopPairsPtr>> {
    auto d = stale_view_pairs(k);
    if (!d) return std::nullopt;
    BFC_COUNT_ADD("svc.degraded", 1);
    BFC_COUNT_ADD("svc.stale_answers", 1);
    span_tag(span, "outcome", "stale");
    span_close(span);
    return d;
  };
  if (overloaded()) {
    if (auto d = stale_pairs()) {
      span_tag(span, "degrade", "admission");
      return ready_future(std::move(*d));
    }
  }
  auto exact = [this, view, key, k, qmask, base_fid, base_outcome, span,
                deadline = req.deadline, trace = span_ctx(span),
                timer = Timer()] {
    try {
      const shard::CrossAggregatePtr agg =
          scatter_.cross(view, deadline.token(), trace);
      std::vector<std::vector<count::VertexPair>> per_shard;
      per_shard.reserve(view->shards.size());
      for (int s = 0; s < view->shard_count(); ++s)
        per_shard.push_back(*shard_top_list(*view, s, k));
      auto pairs = std::make_shared<const std::vector<count::VertexPair>>(
          shard::ScatterGather::merge_top_pairs(per_shard, agg->pairs, k));
      cache_.put(key, CacheValue{pairs});
      const double us = timer.seconds() * 1e6;
      BFC_HIST_OBSERVE("svc.latency_us.top_pairs", us);
      observe_latency(QueryKind::kTopPairs, us);
      if (qmask) note_stale_mask(qmask);
      span_tag(span, "outcome", base_outcome);
      span_close(span);
      return QueryResult<TopPairsPtr>{TopPairsPtr(pairs), view->version,
                                      base_fid, qmask};
    } catch (const CancelledError&) {
      BFC_COUNT_ADD("svc.kernels_cancelled", 1);
      span_tag(span, "cancelled", "true");
      if (auto d = stale_view_pairs(k)) {
        BFC_COUNT_ADD("svc.degraded", 1);
        BFC_COUNT_ADD("svc.stale_answers", 1);
        span_tag(span, "outcome", "stale");
        span_close(span);
        return std::move(*d);
      }
      span_tag(span, "outcome", "shed");
      span_close(span);
      throw OverloadError(OverloadError::Reason::kDeadline);
    } catch (const shard::ShardUnavailableError&) {
      // A leg's host died between the view pin and the fan-out. Same
      // ladder as cancellation: last retired view if one exists, else
      // shed — the NEXT pin will mark the range stale and answer.
      BFC_COUNT_ADD("svc.kernels_cancelled", 1);
      span_tag(span, "cancelled", "true");
      if (auto d = stale_view_pairs(k)) {
        BFC_COUNT_ADD("svc.degraded", 1);
        BFC_COUNT_ADD("svc.stale_answers", 1);
        span_tag(span, "outcome", "stale");
        span_close(span);
        return std::move(*d);
      }
      span_tag(span, "outcome", "shed");
      span_close(span);
      throw OverloadError(OverloadError::Reason::kDeadline);
    }
  };
  if (auto fut = pool_.try_submit(std::move(exact), req.deadline, stale_pairs,
                                  span_ctx(span)))
    return std::move(*fut);
  span_tag(span, "rejected", "true");
  if (auto d = stale_pairs()) return ready_future(std::move(*d));
  span_tag(span, "outcome", "shed");
  return overload_future<QueryResult<TopPairsPtr>>(
      OverloadError::Reason::kRejected);
}

count_t ButterflyService::sharded_support(const shard::ShardView& view,
                                          int owner, vidx_t u, vidx_t v) {
  const SnapshotPtr& snap = view.shards[static_cast<std::size_t>(owner)];
  // All of u's edges live on its owner shard: absent there means absent.
  if (!snap->graph.has_edge(u, v)) return 0;
  // The same-shard component depends only on shard `owner`'s state, so it
  // caches in that shard's tier keyed by the SHARD epoch — it survives
  // publishes on every other shard.
  const CacheKey local_key{snap->epoch, QueryKind::kEdgeSupport, u, v, owner};
  count_t local = 0;
  if (const auto hit = cache_.get(local_key)) {
    local = std::get<count_t>(*hit);
  } else {
    local = support_of_edge(snap->graph, u, v);
    cache_.put(local_key, local);
  }
  publish_shard_gauge(owner);
  return chk::checked_add(
      local, shard::ScatterGather::edge_support_cross(view, owner, u, v));
}

TopPairsPtr ButterflyService::shard_top_list(const shard::ShardView& view,
                                             int s, std::size_t k) {
  const SnapshotPtr& snap = view.shards[static_cast<std::size_t>(s)];
  // Shard-local list: keyed by the shard epoch in the shard's own tier.
  const CacheKey key{snap->epoch, QueryKind::kTopPairs,
                     static_cast<std::int64_t>(k), 0, s};
  if (const auto hit = cache_.get(key)) {
    publish_shard_gauge(s);
    return std::get<TopPairsPtr>(*hit);
  }
  auto list = std::make_shared<const std::vector<count::VertexPair>>(
      count::top_wedge_pairs_v1(snap->graph, k));
  cache_.put(key, CacheValue{list});
  publish_shard_gauge(s);
  return list;
}

std::optional<QueryResult<count_t>> ButterflyService::stale_view_scalar(
    QueryKind kind, std::int64_t a, std::int64_t b) {
  std::uint64_t sig = 0;
  std::uint64_t ver = 0;
  {
    const MutexLock lock(view_mu_);
    if (prev_sig_ == cur_sig_) return std::nullopt;  // no older generation
    sig = prev_sig_;
    ver = prev_version_;
  }
  const CacheKey key{sig, kind, a, b, view_tier()};
  if (const auto hit = cache_.get(key))
    return QueryResult<count_t>{std::get<count_t>(*hit), ver,
                                Fidelity::kStale};
  return std::nullopt;
}

std::optional<QueryResult<TopPairsPtr>> ButterflyService::stale_view_pairs(
    std::size_t k) {
  std::uint64_t sig = 0;
  std::uint64_t ver = 0;
  {
    const MutexLock lock(view_mu_);
    if (prev_sig_ == cur_sig_) return std::nullopt;
    sig = prev_sig_;
    ver = prev_version_;
  }
  const CacheKey key{sig, QueryKind::kTopPairs, static_cast<std::int64_t>(k),
                     0, view_tier()};
  const auto hit = cache_.get(key);
  if (!hit) return std::nullopt;
  return QueryResult<TopPairsPtr>{std::get<TopPairsPtr>(*hit), ver,
                                  Fidelity::kStale};
}

std::optional<QueryResult<count_t>> ButterflyService::degraded_tip_sharded(
    const shard::ShardViewPtr& view, vidx_t vertex, bool v1_side, int owner) {
  const QueryKind kind =
      v1_side ? QueryKind::kVertexTipV1 : QueryKind::kVertexTipV2;
  // Rung 1: the previous view generation's composed answer.
  if (auto stale = stale_view_scalar(kind, vertex, 0)) {
    BFC_COUNT_ADD("svc.degraded", 1);
    BFC_COUNT_ADD("svc.stale_answers", 1);
    note_degraded(owner);
    obs::FlightRecorder::record("degrade", "stale_view",
                                static_cast<std::int64_t>(view->version),
                                vertex);
    return stale;
  }
  // Rung 2 (routed side only): a retained owner-shard pass plus the
  // freshest completed cross aggregate. Without ANY cross aggregate the
  // local pass alone would silently drop the correction — fall through to
  // the estimator instead of answering provably low.
  if (v1_side) {
    const SnapshotPtr& snap = view->shards[static_cast<std::size_t>(owner)];
    if (auto pass = stale_tips(owner, snap->epoch + 1, true)) {
      std::optional<shard::CrossAggregatePtr> agg =
          scatter_.cached(view->signature);
      if (!agg) agg = scatter_.latest_ready();
      if (agg) {
        BFC_COUNT_ADD("svc.degraded", 1);
        BFC_COUNT_ADD("svc.stale_answers", 1);
        note_degraded(owner);
        obs::FlightRecorder::record("degrade", "stale_tips",
                                    static_cast<std::int64_t>(pass->first),
                                    vertex);
        const count_t local =
            (*pass->second)[static_cast<std::size_t>(vertex)];
        return QueryResult<count_t>{
            chk::checked_add(local, (*agg)->tip_v1(vertex)), view->version,
            Fidelity::kStale};
      }
    }
  }
  // Rung 3: sampled estimate on the shard graph(s), plus the freshest
  // completed cross contribution when one exists (local-only and biased
  // low otherwise — still an answer, and tagged kApprox either way).
  count::ApproxOptions opt;
  count_t value = 0;
  if (v1_side) {
    opt.samples = approx_samples_;
    opt.seed = 0x5eedULL ^ (view->signature * 0x9e3779b97f4a7c15ULL) ^
               static_cast<std::uint64_t>(vertex);
    const count::ApproxResult est = count::approx_tip_v1(
        view->shards[static_cast<std::size_t>(owner)]->graph, vertex, opt);
    value = std::max<count_t>(0, std::llround(est.estimate));
  } else {
    // Split the sampling budget across the shards; each estimator sees only
    // local butterflies, so the per-shard estimates sum.
    opt.samples = std::max<std::int64_t>(
        1, approx_samples_ / static_cast<std::int64_t>(view->shard_count()));
    for (int s = 0; s < view->shard_count(); ++s) {
      opt.seed = 0x5eedULL ^ (view->signature * 0x9e3779b97f4a7c15ULL) ^
                 static_cast<std::uint64_t>(vertex) ^
                 (static_cast<std::uint64_t>(s) << 48);
      const count::ApproxResult est = count::approx_tip_v2(
          view->shards[static_cast<std::size_t>(s)]->graph, vertex, opt);
      value = chk::checked_add(
          value, std::max<count_t>(0, std::llround(est.estimate)));
    }
  }
  if (auto agg = scatter_.latest_ready())
    value = chk::checked_add(
        value, v1_side ? (*agg)->tip_v1(vertex) : (*agg)->tip_v2(vertex));
  BFC_COUNT_ADD("svc.degraded", 1);
  BFC_COUNT_ADD("svc.approx_fallbacks", 1);
  note_degraded(owner);
  obs::FlightRecorder::record("degrade", "approx",
                              static_cast<std::int64_t>(view->version),
                              vertex);
  return QueryResult<count_t>{value, view->version, Fidelity::kApprox};
}

// ---- shared plumbing -------------------------------------------------------

std::optional<QueryResult<count_t>> ButterflyService::degraded_tip(
    const SnapshotPtr& snap, vidx_t vertex, bool v1_side) {
  const QueryKind kind =
      v1_side ? QueryKind::kVertexTipV1 : QueryKind::kVertexTipV2;
  // Rung 1: the previous epoch's cached answer (kept on publish precisely
  // for this).
  if (auto stale = stale_scalar(snap, kind, vertex, 0)) {
    BFC_COUNT_ADD("svc.degraded", 1);
    BFC_COUNT_ADD("svc.stale_answers", 1);
    obs::FlightRecorder::record("degrade", "stale_scalar",
                                static_cast<std::int64_t>(snap->epoch),
                                vertex);
    return stale;
  }
  // Rung 2: a retained full tip pass from a recent epoch.
  if (auto pass = stale_tips(0, snap->epoch, v1_side)) {
    BFC_COUNT_ADD("svc.degraded", 1);
    BFC_COUNT_ADD("svc.stale_answers", 1);
    obs::FlightRecorder::record("degrade", "stale_tips",
                                static_cast<std::int64_t>(pass->first),
                                vertex);
    return QueryResult<count_t>{
        (*pass->second)[static_cast<std::size_t>(vertex)], pass->first,
        Fidelity::kStale};
  }
  // Rung 3: sampled estimate on the requested snapshot — O(samples · deg)
  // regardless of graph size, affordable even under overload.
  count::ApproxOptions opt;
  opt.samples = approx_samples_;
  opt.seed = 0x5eedULL ^ (snap->epoch * 0x9e3779b97f4a7c15ULL) ^
             static_cast<std::uint64_t>(vertex);
  const count::ApproxResult est =
      v1_side ? count::approx_tip_v1(snap->graph, vertex, opt)
              : count::approx_tip_v2(snap->graph, vertex, opt);
  BFC_COUNT_ADD("svc.degraded", 1);
  BFC_COUNT_ADD("svc.approx_fallbacks", 1);
  obs::FlightRecorder::record("degrade", "approx",
                              static_cast<std::int64_t>(snap->epoch), vertex);
  const count_t value = std::max<count_t>(0, std::llround(est.estimate));
  return QueryResult<count_t>{value, snap->epoch, Fidelity::kApprox};
}

std::optional<QueryResult<count_t>> ButterflyService::stale_scalar(
    const SnapshotPtr& snap, QueryKind kind, std::int64_t a, std::int64_t b) {
  if (snap->epoch == 0) return std::nullopt;
  const CacheKey key{snap->epoch - 1, kind, a, b};
  if (const auto hit = cache_.get(key))
    return QueryResult<count_t>{std::get<count_t>(*hit), snap->epoch - 1,
                                Fidelity::kStale};
  return std::nullopt;
}

std::optional<std::pair<std::uint64_t, ButterflyService::TipVector>>
ButterflyService::stale_tips(int shard, std::uint64_t before_epoch,
                             bool v1_side) {
  std::shared_future<TipVector> best;
  std::uint64_t best_epoch = 0;
  {
    const MutexLock lock(memo_mu_);
    for (const auto& [key, pass] : tip_memo_) {
      if (std::get<0>(key) != shard || std::get<2>(key) != v1_side ||
          std::get<1>(key) >= before_epoch)
        continue;
      if (pass.result.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready)
        continue;  // a degraded answer must not block on an in-flight pass
      if (!best.valid() || std::get<1>(key) > best_epoch) {
        best = pass.result;
        best_epoch = std::get<1>(key);
      }
    }
  }
  if (!best.valid()) return std::nullopt;
  try {
    return std::make_pair(best_epoch, best.get());
  } catch (...) {
    return std::nullopt;  // that pass failed; not a usable stale tier
  }
}

bool ButterflyService::overloaded() const {
  if (degrade_queue_depth_ != 0 && pool_.queue_depth() >= degrade_queue_depth_)
    return true;
  if (degrade_p95_us_ > 0.0 && latency_p95_us() > degrade_p95_us_)
    return true;
  // SLO-driven degradation: burning error budget faster than the objective
  // allows means exact answers now cost answers later — degrade first.
  return slo_.budget_exhausted();
}

bool ButterflyService::overloaded(int shard) const {
  if (overloaded()) return true;
  if (shard < 0 || shard >= static_cast<int>(shard_slo_.size())) return false;
  return shard_slo_[static_cast<std::size_t>(shard)]->budget_exhausted();
}

void ButterflyService::observe_latency(QueryKind kind, double us, int shard) {
  slo_.observe(kind, us);
  if (shard >= 0 && shard < static_cast<int>(shard_slo_.size()))
    shard_slo_[static_cast<std::size_t>(shard)]->observe(kind, us);
  const MutexLock lock(lat_mu_);
  lat_ring_[lat_next_] = us;
  lat_next_ = (lat_next_ + 1) % lat_ring_.size();
  if (lat_count_ < lat_ring_.size()) ++lat_count_;
}

void ButterflyService::note_degraded(int shard) {
  if (shard < 0 || shard >= static_cast<int>(shard_degraded_.size())) return;
  obs::Counter* c = shard_degraded_[static_cast<std::size_t>(shard)];
  if (c != nullptr) c->increment();
}

void ButterflyService::note_stale_mask(std::uint64_t mask) {
  BFC_COUNT_ADD("svc.degraded", 1);
  BFC_COUNT_ADD("svc.stale_answers", 1);
  for (int k = 0; k < shards_ && k < 64; ++k)
    if (((mask >> k) & 1u) != 0) note_degraded(k);
}

void ButterflyService::publish_shard_gauge(int shard) {
  if (shard < 0 || shard >= static_cast<int>(shard_hit_gauges_.size()))
    return;
  obs::Gauge* g = shard_hit_gauges_[static_cast<std::size_t>(shard)];
  if (g != nullptr) g->set(cache_.hit_rate(shard));
}

double ButterflyService::latency_p95_us() const {
  std::array<double, kLatencyWindow> window;  // NOLINT(*-member-init)
  std::size_t n = 0;
  {
    const MutexLock lock(lat_mu_);
    n = lat_count_;
    std::copy_n(lat_ring_.begin(), n, window.begin());
  }
  if (n == 0) return 0.0;
  std::size_t idx = (n * 95) / 100;
  if (idx >= n) idx = n - 1;
  const auto nth = window.begin() + static_cast<std::ptrdiff_t>(idx);
  std::nth_element(window.begin(), nth,
                   window.begin() + static_cast<std::ptrdiff_t>(n));
  BFC_GAUGE_SET("svc.latency_p95_us", *nth);
  return *nth;
}

ButterflyService::TipVector ButterflyService::tips_for(
    int shard, const SnapshotPtr& snap, bool v1_side,
    const CancelToken& cancel, const obs::TraceContext& trace) {
  const TipKey key{shard, snap->epoch, v1_side};
  std::promise<TipVector> mine;
  std::shared_future<TipVector> pass;
  bool compute = false;
  std::uint64_t my_pass = 0;
  {
    const MutexLock lock(memo_mu_);
    const auto it = tip_memo_.find(key);
    if (it == tip_memo_.end()) {
      pass = mine.get_future().share();
      my_pass = ++next_tip_pass_;
      tip_memo_.emplace(key, TipPass{pass, false, my_pass});
      compute = true;
    } else {
      pass = it->second.result;
      BFC_COUNT_ADD("svc.coalesced_queries", 1);
      if (!it->second.has_joiner) {
        it->second.has_joiner = true;
        BFC_COUNT_ADD("svc.coalesced_batches", 1);
      }
    }
  }
  if (compute) {
    BFC_TRACE_SCOPE(v1_side ? "svc.tip_pass_v1" : "svc.tip_pass_v2");
    BFC_COUNT_ADD("svc.tip_passes", 1);
    // The kernel span belongs to the request that computes; every coalesced
    // waiter's own query span references the same pass only through timing.
    obs::Span kernel_span(
        trace, v1_side ? "svc.kernel.tip_v1" : "svc.kernel.tip_v2");
    kernel_span.tag("epoch", std::to_string(snap->epoch));
    if (shards_ > 1) kernel_span.tag("shard", std::to_string(shard));
    try {
      // Checked builds can inject latency here to force deadline expiry
      // mid-pass (fault::Point::kSlowKernel, param = milliseconds).
      if (fault::fires(fault::Point::kSlowKernel))
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fault::param(fault::Point::kSlowKernel)));
      auto tips = std::make_shared<const std::vector<count_t>>(
          v1_side ? count::butterflies_per_v1(snap->graph, cancel)
                  : count::butterflies_per_v2(snap->graph, cancel));
      kernel_span.tag("outcome", "ok");
      mine.set_value(std::move(tips));
    } catch (const CancelledError&) {
      // A cancelled kernel still closes its span — tagged, not dropped —
      // so the trace tree shows where the deadline landed.
      kernel_span.tag("cancelled", "true");
      kernel_span.tag("outcome", "cancelled");
      kernel_span.close();
      drop_tip_pass(key, my_pass);
      mine.set_exception(std::current_exception());
    } catch (...) {
      // Drop the memo so a later query can retry, then propagate to every
      // request already coalesced onto this pass (each degrades on its own).
      kernel_span.tag("outcome", "error");
      drop_tip_pass(key, my_pass);
      mine.set_exception(std::current_exception());
    }
  }
  return pass.get();
}

void ButterflyService::drop_tip_pass(const TipKey& key, std::uint64_t pass_id) {
  // Erase only OUR memo entry. Between the kernel failing and this lock
  // acquisition a memo flush (publish retirement, restore, swap_shard) plus
  // a fresh query can have installed a NEW in-flight pass under the same
  // key; a blind erase would orphan that healthy pass and force a later
  // caller into a duplicate compute.
  const MutexLock lock(memo_mu_);
  const auto it = tip_memo_.find(key);
  if (it != tip_memo_.end() && it->second.pass_id == pass_id)
    tip_memo_.erase(it);
}

}  // namespace bfc::svc
