#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <thread>

#include "count/approx.hpp"
#include "count/local_counts.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "obs/trace.hpp"
#include "sparse/ops.hpp"
#include "svc/fault.hpp"
#include "util/timer.hpp"

namespace bfc::svc {
namespace {

template <typename T>
std::future<T> ready_future(T value) {
  std::promise<T> p;
  p.set_value(std::move(value));
  return p.get_future();
}

template <typename T>
std::future<T> overload_future(OverloadError::Reason reason) {
  std::promise<T> p;
  p.set_exception(std::make_exception_ptr(OverloadError(reason)));
  return p.get_future();
}

/// Support of one present edge, Eq. (25) evaluated for a single (u, v):
/// Σ_{w∈N(v)} |N(u)∩N(w)| − deg(u) − deg(v) + 1. No global pass.
count_t support_of_edge(const graph::BipartiteGraph& g, vidx_t u, vidx_t v) {
  const std::span<const vidx_t> nu = g.neighbors_of_v1(u);
  const std::span<const vidx_t> nv = g.neighbors_of_v2(v);
  count_t sum = 0;
  for (const vidx_t w : nv)
    sum += sparse::intersection_size(nu, g.neighbors_of_v1(w));
  return sum - static_cast<count_t>(nu.size()) -
         static_cast<count_t>(nv.size()) + 1;
}

// Request spans outlive the submitting frame (the exact lambda runs on a
// pool worker, the fallback possibly on a third thread), so they live
// behind a shared_ptr — allocated only when collection is actually on, so
// the disabled path stays allocation-free. Exactly one of the capturing
// closures runs; Span::close() is idempotent and tags on a closed span are
// dropped, so the helpers need no coordination.
using SpanPtr = std::shared_ptr<obs::Span>;

SpanPtr open_span(const obs::TraceContext& ctx, const char* name) {
  if (!obs::SpanLog::enabled() || !ctx.active()) return nullptr;
  return std::make_shared<obs::Span>(ctx, name);
}

void span_tag(const SpanPtr& span, const char* key, std::string_view value) {
  if (span) span->tag(key, value);
}

obs::TraceContext span_ctx(const SpanPtr& span) {
  return span ? span->context() : obs::TraceContext{};
}

void span_close(const SpanPtr& span) {
  if (span) span->close();
}

std::array<SloPolicy, kQueryKinds> slo_policies(const ServiceOptions& o) {
  std::array<SloPolicy, kQueryKinds> policies;
  for (std::size_t k = 0; k < kQueryKinds; ++k)
    policies[k] = SloPolicy{o.slo_target_us[k], o.slo_objective};
  return policies;
}

}  // namespace

ButterflyService::ButterflyService(vidx_t n1, vidx_t n2,
                                   ServiceOptions options)
    : store_(n1, n2),
      cache_(options.cache_capacity),
      memo_keep_epochs_(options.memo_keep_epochs),
      degrade_queue_depth_(options.degrade_queue_depth),
      degrade_p95_us_(options.degrade_p95_us),
      approx_samples_(options.approx_samples),
      slo_(slo_policies(options), kLatencyWindow),
      pool_(ExecutorOptions{options.threads, options.max_queue,
                            options.shed_policy}) {
  require(options.memo_keep_epochs >= 1,
          "ButterflyService: memo_keep_epochs must be >= 1");
  require(options.approx_samples >= 1,
          "ButterflyService: approx_samples must be >= 1");
}

PublishResult ButterflyService::apply_updates(
    std::span<const EdgeUpdate> batch) {
  const PublishResult result = store_.apply_batch(batch);
  obs::FlightRecorder::record("publish", "",
                              static_cast<std::int64_t>(result.epoch),
                              static_cast<std::int64_t>(result.applied));
  // Entries are epoch-keyed so none could serve a wrong answer; keep the
  // just-retired epoch as the stale-answer tier and drop everything older.
  cache_.invalidate_older_than(result.epoch == 0 ? 0 : result.epoch - 1);
  {
    const MutexLock lock(memo_mu_);
    std::erase_if(tip_memo_, [&](const auto& entry) {
      return entry.first.first + memo_keep_epochs_ <= result.epoch;
    });
  }
  return result;
}

void ButterflyService::persist(const std::string& path) const {
  try {
    store_.persist(path);
  } catch (...) {
    obs::FlightRecorder::dump_on_fault("persist failed");
    throw;
  }
  obs::FlightRecorder::record("persist", path.c_str(),
                              static_cast<std::int64_t>(store_.epoch()));
}

void ButterflyService::restore(const std::string& path) {
  try {
    store_.restore(path);  // throws on corruption, store unchanged
  } catch (...) {
    obs::FlightRecorder::dump_on_fault("restore failed");
    throw;
  }
  obs::FlightRecorder::record("restore", path.c_str(),
                              static_cast<std::int64_t>(store_.epoch()));
  // The epoch sequence restarted: every cached/memoised answer is keyed by
  // epochs that no longer mean anything.
  cache_.invalidate_all();
  const MutexLock lock(memo_mu_);
  tip_memo_.clear();
}

std::future<QueryResult<count_t>> ButterflyService::global_count(Request req) {
  obs::Span span(root_context(req), "svc.query.global");
  SnapshotPtr snap = req.snap ? std::move(req.snap) : store_.current();
  BFC_COUNT_ADD("svc.queries", 1);
  // Maintained incrementally by the writer: answering is one field read.
  BFC_HIST_OBSERVE("svc.latency_us.global", 0);
  observe_latency(QueryKind::kGlobalCount, 0.0);
  span.tag("epoch", std::to_string(snap->epoch));
  span.tag("outcome", "exact");
  return ready_future(
      QueryResult<count_t>{snap->butterflies, snap->epoch, Fidelity::kExact});
}

std::future<QueryResult<count_t>> ButterflyService::vertex_tip_v1(
    vidx_t u, Request req) {
  require(u >= 0 && u < store_.n1(), "vertex_tip_v1: vertex out of range");
  return vertex_tip(u, /*v1_side=*/true, std::move(req));
}

std::future<QueryResult<count_t>> ButterflyService::vertex_tip_v2(
    vidx_t v, Request req) {
  require(v >= 0 && v < store_.n2(), "vertex_tip_v2: vertex out of range");
  return vertex_tip(v, /*v1_side=*/false, std::move(req));
}

std::future<QueryResult<count_t>> ButterflyService::vertex_tip(vidx_t vertex,
                                                               bool v1_side,
                                                               Request req) {
  const QueryKind kind =
      v1_side ? QueryKind::kVertexTipV1 : QueryKind::kVertexTipV2;
  SnapshotPtr snap = req.snap ? std::move(req.snap) : store_.current();
  BFC_COUNT_ADD("svc.queries", 1);
  const SpanPtr span = open_span(
      root_context(req), v1_side ? "svc.query.tip_v1" : "svc.query.tip_v2");
  span_tag(span, "epoch", std::to_string(snap->epoch));
  const CacheKey key{snap->epoch, kind, vertex, 0};
  if (const auto hit = cache_.get(key)) {
    if (v1_side)
      BFC_HIST_OBSERVE("svc.latency_us.tip_v1", 0);
    else
      BFC_HIST_OBSERVE("svc.latency_us.tip_v2", 0);
    observe_latency(kind, 0.0);
    span_tag(span, "cache", "hit");
    span_tag(span, "outcome", "exact");
    return ready_future(QueryResult<count_t>{std::get<count_t>(*hit),
                                             snap->epoch, Fidelity::kExact});
  }
  span_tag(span, "cache", "miss");
  // Rung 0 of the ladder: already drowning — answer degraded right now
  // instead of queueing exact work nobody can afford.
  if (overloaded()) {
    if (auto d = degraded_tip(snap, vertex, v1_side)) {
      span_tag(span, "degrade", "admission");
      span_tag(span, "outcome", fidelity_name(d->fidelity));
      return ready_future(std::move(*d));
    }
  }
  auto fallback = [this, snap, vertex, v1_side, span] {
    auto d = degraded_tip(snap, vertex, v1_side);
    span_tag(span, "degrade", "abandoned");
    span_tag(span, "outcome", d ? fidelity_name(d->fidelity) : "shed");
    span_close(span);
    return d;
  };
  auto exact = [this, snap, key, vertex, v1_side, deadline = req.deadline,
                span, trace = span_ctx(span), timer = Timer()] {
    try {
      const TipVector tips = tips_for(snap, v1_side, deadline.token(), trace);
      const count_t value = (*tips)[static_cast<std::size_t>(vertex)];
      cache_.put(key, value);
      const double us = timer.seconds() * 1e6;
      if (v1_side)
        BFC_HIST_OBSERVE("svc.latency_us.tip_v1", us);
      else
        BFC_HIST_OBSERVE("svc.latency_us.tip_v2", us);
      observe_latency(v1_side ? QueryKind::kVertexTipV1
                              : QueryKind::kVertexTipV2,
                      us);
      span_tag(span, "outcome", "exact");
      span_close(span);
      return QueryResult<count_t>{value, snap->epoch, Fidelity::kExact};
    } catch (const CancelledError&) {
      // The deadline fired mid-pass; the kernel gave up cooperatively.
      BFC_COUNT_ADD("svc.kernels_cancelled", 1);
      span_tag(span, "cancelled", "true");
      if (auto d = degraded_tip(snap, vertex, v1_side)) {
        span_tag(span, "outcome", fidelity_name(d->fidelity));
        span_close(span);
        return std::move(*d);
      }
      span_tag(span, "outcome", "shed");
      span_close(span);
      throw OverloadError(OverloadError::Reason::kDeadline);
    }
  };
  if (auto fut = pool_.try_submit(std::move(exact), req.deadline,
                                  std::move(fallback), span_ctx(span)))
    return std::move(*fut);
  // Refused at admission: degrade on the caller's thread.
  span_tag(span, "rejected", "true");
  if (auto d = degraded_tip(snap, vertex, v1_side)) {
    span_tag(span, "outcome", fidelity_name(d->fidelity));
    return ready_future(std::move(*d));
  }
  span_tag(span, "outcome", "shed");
  return overload_future<QueryResult<count_t>>(
      OverloadError::Reason::kRejected);
}

std::future<QueryResult<count_t>> ButterflyService::edge_support(vidx_t u,
                                                                 vidx_t v,
                                                                 Request req) {
  require(u >= 0 && u < store_.n1() && v >= 0 && v < store_.n2(),
          "edge_support: vertex out of range");
  SnapshotPtr snap = req.snap ? std::move(req.snap) : store_.current();
  BFC_COUNT_ADD("svc.queries", 1);
  const SpanPtr span = open_span(root_context(req), "svc.query.edge");
  span_tag(span, "epoch", std::to_string(snap->epoch));
  const CacheKey key{snap->epoch, QueryKind::kEdgeSupport, u, v};
  if (const auto hit = cache_.get(key)) {
    BFC_HIST_OBSERVE("svc.latency_us.edge", 0);
    observe_latency(QueryKind::kEdgeSupport, 0.0);
    span_tag(span, "cache", "hit");
    span_tag(span, "outcome", "exact");
    return ready_future(QueryResult<count_t>{std::get<count_t>(*hit),
                                             snap->epoch, Fidelity::kExact});
  }
  span_tag(span, "cache", "miss");
  // Shed/overload path: previous epoch's cached support, else the exact
  // one-edge computation inline — it is one row scan, cheap enough to run
  // on the shedding thread rather than give up fidelity.
  auto inline_answer = [this, snap, key, u, v,
                        span]() -> std::optional<QueryResult<count_t>> {
    if (auto stale = stale_scalar(snap, QueryKind::kEdgeSupport, u, v)) {
      BFC_COUNT_ADD("svc.degraded", 1);
      BFC_COUNT_ADD("svc.stale_answers", 1);
      span_tag(span, "outcome", "stale");
      span_close(span);
      return stale;
    }
    const count_t value =
        snap->graph.has_edge(u, v) ? support_of_edge(snap->graph, u, v) : 0;
    cache_.put(key, value);
    BFC_COUNT_ADD("svc.inline_answers", 1);
    span_tag(span, "inline", "true");
    span_tag(span, "outcome", "exact");
    span_close(span);
    return QueryResult<count_t>{value, snap->epoch, Fidelity::kExact};
  };
  if (overloaded()) {
    span_tag(span, "degrade", "admission");
    return ready_future(std::move(*inline_answer()));
  }
  auto exact = [this, snap, key, u, v, span, timer = Timer()] {
    const count_t value =
        snap->graph.has_edge(u, v) ? support_of_edge(snap->graph, u, v) : 0;
    cache_.put(key, value);
    const double us = timer.seconds() * 1e6;
    BFC_HIST_OBSERVE("svc.latency_us.edge", us);
    observe_latency(QueryKind::kEdgeSupport, us);
    span_tag(span, "outcome", "exact");
    span_close(span);
    return QueryResult<count_t>{value, snap->epoch, Fidelity::kExact};
  };
  if (auto fut = pool_.try_submit(std::move(exact), req.deadline,
                                  inline_answer, span_ctx(span)))
    return std::move(*fut);
  span_tag(span, "rejected", "true");
  return ready_future(std::move(*inline_answer()));
}

std::future<QueryResult<TopPairsPtr>> ButterflyService::top_pairs(
    std::size_t k, Request req) {
  SnapshotPtr snap = req.snap ? std::move(req.snap) : store_.current();
  BFC_COUNT_ADD("svc.queries", 1);
  const SpanPtr span = open_span(root_context(req), "svc.query.top_pairs");
  span_tag(span, "epoch", std::to_string(snap->epoch));
  const CacheKey key{snap->epoch, QueryKind::kTopPairs,
                     static_cast<std::int64_t>(k), 0};
  if (const auto hit = cache_.get(key)) {
    BFC_HIST_OBSERVE("svc.latency_us.top_pairs", 0);
    observe_latency(QueryKind::kTopPairs, 0.0);
    span_tag(span, "cache", "hit");
    span_tag(span, "outcome", "exact");
    return ready_future(QueryResult<TopPairsPtr>{
        std::get<TopPairsPtr>(*hit), snap->epoch, Fidelity::kExact});
  }
  span_tag(span, "cache", "miss");
  // Only stale rung: there is no cheap sampled substitute for an exact
  // top-k list, so with no previous-epoch list the query is shed outright.
  auto stale_pairs = [this, snap, k,
                      span]() -> std::optional<QueryResult<TopPairsPtr>> {
    if (snap->epoch == 0) return std::nullopt;
    const CacheKey prev{snap->epoch - 1, QueryKind::kTopPairs,
                        static_cast<std::int64_t>(k), 0};
    const auto hit = cache_.get(prev);
    if (!hit) return std::nullopt;
    BFC_COUNT_ADD("svc.degraded", 1);
    BFC_COUNT_ADD("svc.stale_answers", 1);
    span_tag(span, "outcome", "stale");
    span_close(span);
    return QueryResult<TopPairsPtr>{std::get<TopPairsPtr>(*hit),
                                    snap->epoch - 1, Fidelity::kStale};
  };
  if (overloaded()) {
    if (auto d = stale_pairs()) {
      span_tag(span, "degrade", "admission");
      return ready_future(std::move(*d));
    }
  }
  auto exact = [this, snap, key, k, span, timer = Timer()] {
    auto pairs = std::make_shared<const std::vector<count::VertexPair>>(
        count::top_wedge_pairs_v1(snap->graph, k));
    cache_.put(key, CacheValue{pairs});
    const double us = timer.seconds() * 1e6;
    BFC_HIST_OBSERVE("svc.latency_us.top_pairs", us);
    observe_latency(QueryKind::kTopPairs, us);
    span_tag(span, "outcome", "exact");
    span_close(span);
    return QueryResult<TopPairsPtr>{TopPairsPtr(pairs), snap->epoch,
                                    Fidelity::kExact};
  };
  if (auto fut = pool_.try_submit(std::move(exact), req.deadline, stale_pairs,
                                  span_ctx(span)))
    return std::move(*fut);
  span_tag(span, "rejected", "true");
  if (auto d = stale_pairs()) return ready_future(std::move(*d));
  span_tag(span, "outcome", "shed");
  return overload_future<QueryResult<TopPairsPtr>>(
      OverloadError::Reason::kRejected);
}

std::optional<QueryResult<count_t>> ButterflyService::degraded_tip(
    const SnapshotPtr& snap, vidx_t vertex, bool v1_side) {
  const QueryKind kind =
      v1_side ? QueryKind::kVertexTipV1 : QueryKind::kVertexTipV2;
  // Rung 1: the previous epoch's cached answer (kept on publish precisely
  // for this).
  if (auto stale = stale_scalar(snap, kind, vertex, 0)) {
    BFC_COUNT_ADD("svc.degraded", 1);
    BFC_COUNT_ADD("svc.stale_answers", 1);
    obs::FlightRecorder::record("degrade", "stale_scalar",
                                static_cast<std::int64_t>(snap->epoch),
                                vertex);
    return stale;
  }
  // Rung 2: a retained full tip pass from a recent epoch.
  if (auto pass = stale_tips(snap->epoch, v1_side)) {
    BFC_COUNT_ADD("svc.degraded", 1);
    BFC_COUNT_ADD("svc.stale_answers", 1);
    obs::FlightRecorder::record("degrade", "stale_tips",
                                static_cast<std::int64_t>(pass->first),
                                vertex);
    return QueryResult<count_t>{
        (*pass->second)[static_cast<std::size_t>(vertex)], pass->first,
        Fidelity::kStale};
  }
  // Rung 3: sampled estimate on the requested snapshot — O(samples · deg)
  // regardless of graph size, affordable even under overload.
  count::ApproxOptions opt;
  opt.samples = approx_samples_;
  opt.seed = 0x5eedULL ^ (snap->epoch * 0x9e3779b97f4a7c15ULL) ^
             static_cast<std::uint64_t>(vertex);
  const count::ApproxResult est =
      v1_side ? count::approx_tip_v1(snap->graph, vertex, opt)
              : count::approx_tip_v2(snap->graph, vertex, opt);
  BFC_COUNT_ADD("svc.degraded", 1);
  BFC_COUNT_ADD("svc.approx_fallbacks", 1);
  obs::FlightRecorder::record("degrade", "approx",
                              static_cast<std::int64_t>(snap->epoch), vertex);
  const count_t value = std::max<count_t>(0, std::llround(est.estimate));
  return QueryResult<count_t>{value, snap->epoch, Fidelity::kApprox};
}

std::optional<QueryResult<count_t>> ButterflyService::stale_scalar(
    const SnapshotPtr& snap, QueryKind kind, std::int64_t a, std::int64_t b) {
  if (snap->epoch == 0) return std::nullopt;
  const CacheKey key{snap->epoch - 1, kind, a, b};
  if (const auto hit = cache_.get(key))
    return QueryResult<count_t>{std::get<count_t>(*hit), snap->epoch - 1,
                                Fidelity::kStale};
  return std::nullopt;
}

std::optional<std::pair<std::uint64_t, ButterflyService::TipVector>>
ButterflyService::stale_tips(std::uint64_t before_epoch, bool v1_side) {
  std::shared_future<TipVector> best;
  std::uint64_t best_epoch = 0;
  {
    const MutexLock lock(memo_mu_);
    for (const auto& [key, pass] : tip_memo_) {
      if (key.second != v1_side || key.first >= before_epoch) continue;
      if (pass.result.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready)
        continue;  // a degraded answer must not block on an in-flight pass
      if (!best.valid() || key.first > best_epoch) {
        best = pass.result;
        best_epoch = key.first;
      }
    }
  }
  if (!best.valid()) return std::nullopt;
  try {
    return std::make_pair(best_epoch, best.get());
  } catch (...) {
    return std::nullopt;  // that pass failed; not a usable stale tier
  }
}

bool ButterflyService::overloaded() const {
  if (degrade_queue_depth_ != 0 && pool_.queue_depth() >= degrade_queue_depth_)
    return true;
  if (degrade_p95_us_ > 0.0 && latency_p95_us() > degrade_p95_us_)
    return true;
  // SLO-driven degradation: burning error budget faster than the objective
  // allows means exact answers now cost answers later — degrade first.
  return slo_.budget_exhausted();
}

void ButterflyService::observe_latency(QueryKind kind, double us) {
  slo_.observe(kind, us);
  const MutexLock lock(lat_mu_);
  lat_ring_[lat_next_] = us;
  lat_next_ = (lat_next_ + 1) % lat_ring_.size();
  if (lat_count_ < lat_ring_.size()) ++lat_count_;
}

double ButterflyService::latency_p95_us() const {
  std::array<double, kLatencyWindow> window;  // NOLINT(*-member-init)
  std::size_t n = 0;
  {
    const MutexLock lock(lat_mu_);
    n = lat_count_;
    std::copy_n(lat_ring_.begin(), n, window.begin());
  }
  if (n == 0) return 0.0;
  std::size_t idx = (n * 95) / 100;
  if (idx >= n) idx = n - 1;
  const auto nth = window.begin() + static_cast<std::ptrdiff_t>(idx);
  std::nth_element(window.begin(), nth,
                   window.begin() + static_cast<std::ptrdiff_t>(n));
  BFC_GAUGE_SET("svc.latency_p95_us", *nth);
  return *nth;
}

ButterflyService::TipVector ButterflyService::tips_for(
    const SnapshotPtr& snap, bool v1_side, const CancelToken& cancel,
    const obs::TraceContext& trace) {
  const std::pair<std::uint64_t, bool> key{snap->epoch, v1_side};
  std::promise<TipVector> mine;
  std::shared_future<TipVector> pass;
  bool compute = false;
  {
    const MutexLock lock(memo_mu_);
    const auto it = tip_memo_.find(key);
    if (it == tip_memo_.end()) {
      pass = mine.get_future().share();
      tip_memo_.emplace(key, TipPass{pass, false});
      compute = true;
    } else {
      pass = it->second.result;
      BFC_COUNT_ADD("svc.coalesced_queries", 1);
      if (!it->second.has_joiner) {
        it->second.has_joiner = true;
        BFC_COUNT_ADD("svc.coalesced_batches", 1);
      }
    }
  }
  if (compute) {
    BFC_TRACE_SCOPE(v1_side ? "svc.tip_pass_v1" : "svc.tip_pass_v2");
    BFC_COUNT_ADD("svc.tip_passes", 1);
    // The kernel span belongs to the request that computes; every coalesced
    // waiter's own query span references the same pass only through timing.
    obs::Span kernel_span(
        trace, v1_side ? "svc.kernel.tip_v1" : "svc.kernel.tip_v2");
    kernel_span.tag("epoch", std::to_string(snap->epoch));
    try {
      // Checked builds can inject latency here to force deadline expiry
      // mid-pass (fault::Point::kSlowKernel, param = milliseconds).
      if (fault::fires(fault::Point::kSlowKernel))
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fault::param(fault::Point::kSlowKernel)));
      auto tips = std::make_shared<const std::vector<count_t>>(
          v1_side ? count::butterflies_per_v1(snap->graph, cancel)
                  : count::butterflies_per_v2(snap->graph, cancel));
      kernel_span.tag("outcome", "ok");
      mine.set_value(std::move(tips));
    } catch (const CancelledError&) {
      // A cancelled kernel still closes its span — tagged, not dropped —
      // so the trace tree shows where the deadline landed.
      kernel_span.tag("cancelled", "true");
      kernel_span.tag("outcome", "cancelled");
      kernel_span.close();
      {
        const MutexLock lock(memo_mu_);
        tip_memo_.erase(key);
      }
      mine.set_exception(std::current_exception());
    } catch (...) {
      // Drop the memo so a later query can retry, then propagate to every
      // request already coalesced onto this pass (each degrades on its own).
      kernel_span.tag("outcome", "error");
      {
        const MutexLock lock(memo_mu_);
        tip_memo_.erase(key);
      }
      mine.set_exception(std::current_exception());
    }
  }
  return pass.get();
}

}  // namespace bfc::svc
