#include "svc/service.hpp"

#include <exception>

#include "count/local_counts.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sparse/ops.hpp"
#include "util/timer.hpp"

namespace bfc::svc {
namespace {

template <typename T>
std::future<T> ready_future(T value) {
  std::promise<T> p;
  p.set_value(std::move(value));
  return p.get_future();
}

/// Support of one present edge, Eq. (25) evaluated for a single (u, v):
/// Σ_{w∈N(v)} |N(u)∩N(w)| − deg(u) − deg(v) + 1. No global pass.
count_t support_of_edge(const graph::BipartiteGraph& g, vidx_t u, vidx_t v) {
  const std::span<const vidx_t> nu = g.neighbors_of_v1(u);
  const std::span<const vidx_t> nv = g.neighbors_of_v2(v);
  count_t sum = 0;
  for (const vidx_t w : nv)
    sum += sparse::intersection_size(nu, g.neighbors_of_v1(w));
  return sum - static_cast<count_t>(nu.size()) -
         static_cast<count_t>(nv.size()) + 1;
}

}  // namespace

ButterflyService::ButterflyService(vidx_t n1, vidx_t n2,
                                   ServiceOptions options)
    : store_(n1, n2),
      cache_(options.cache_capacity),
      memo_keep_epochs_(options.memo_keep_epochs),
      pool_(options.threads) {
  require(options.memo_keep_epochs >= 1,
          "ButterflyService: memo_keep_epochs must be >= 1");
}

PublishResult ButterflyService::apply_updates(
    std::span<const EdgeUpdate> batch) {
  const PublishResult result = store_.apply_batch(batch);
  // Wholesale invalidation: entries are epoch-keyed so none could serve a
  // wrong answer, but readers move to the new epoch immediately and stale
  // entries would only crowd out live ones.
  cache_.invalidate_all();
  {
    const std::scoped_lock lock(memo_mu_);
    std::erase_if(tip_memo_, [&](const auto& entry) {
      return entry.first.first + memo_keep_epochs_ <= result.epoch;
    });
  }
  return result;
}

std::future<count_t> ButterflyService::global_count(SnapshotPtr snap) {
  if (!snap) snap = store_.current();
  BFC_COUNT_ADD("svc.queries", 1);
  // Maintained incrementally by the writer: answering is one field read.
  BFC_HIST_OBSERVE("svc.latency_us.global", 0);
  return ready_future(snap->butterflies);
}

std::future<count_t> ButterflyService::vertex_tip_v1(vidx_t u,
                                                     SnapshotPtr snap) {
  require(u >= 0 && u < store_.n1(), "vertex_tip_v1: vertex out of range");
  if (!snap) snap = store_.current();
  BFC_COUNT_ADD("svc.queries", 1);
  const CacheKey key{snap->epoch, QueryKind::kVertexTipV1, u, 0};
  if (const auto hit = cache_.get(key)) {
    BFC_HIST_OBSERVE("svc.latency_us.tip_v1", 0);
    return ready_future(std::get<count_t>(*hit));
  }
  return pool_.submit([this, snap = std::move(snap), key, u, timer = Timer()] {
    const TipVector tips = tips_for(snap, /*v1_side=*/true);
    const count_t value = (*tips)[static_cast<std::size_t>(u)];
    cache_.put(key, value);
    BFC_HIST_OBSERVE("svc.latency_us.tip_v1", timer.seconds() * 1e6);
    return value;
  });
}

std::future<count_t> ButterflyService::vertex_tip_v2(vidx_t v,
                                                     SnapshotPtr snap) {
  require(v >= 0 && v < store_.n2(), "vertex_tip_v2: vertex out of range");
  if (!snap) snap = store_.current();
  BFC_COUNT_ADD("svc.queries", 1);
  const CacheKey key{snap->epoch, QueryKind::kVertexTipV2, v, 0};
  if (const auto hit = cache_.get(key)) {
    BFC_HIST_OBSERVE("svc.latency_us.tip_v2", 0);
    return ready_future(std::get<count_t>(*hit));
  }
  return pool_.submit([this, snap = std::move(snap), key, v, timer = Timer()] {
    const TipVector tips = tips_for(snap, /*v1_side=*/false);
    const count_t value = (*tips)[static_cast<std::size_t>(v)];
    cache_.put(key, value);
    BFC_HIST_OBSERVE("svc.latency_us.tip_v2", timer.seconds() * 1e6);
    return value;
  });
}

std::future<count_t> ButterflyService::edge_support(vidx_t u, vidx_t v,
                                                    SnapshotPtr snap) {
  require(u >= 0 && u < store_.n1() && v >= 0 && v < store_.n2(),
          "edge_support: vertex out of range");
  if (!snap) snap = store_.current();
  BFC_COUNT_ADD("svc.queries", 1);
  const CacheKey key{snap->epoch, QueryKind::kEdgeSupport, u, v};
  if (const auto hit = cache_.get(key)) {
    BFC_HIST_OBSERVE("svc.latency_us.edge", 0);
    return ready_future(std::get<count_t>(*hit));
  }
  return pool_.submit(
      [this, snap = std::move(snap), key, u, v, timer = Timer()] {
        const count_t value = snap->graph.has_edge(u, v)
                                  ? support_of_edge(snap->graph, u, v)
                                  : 0;
        cache_.put(key, value);
        BFC_HIST_OBSERVE("svc.latency_us.edge", timer.seconds() * 1e6);
        return value;
      });
}

std::future<TopPairsPtr> ButterflyService::top_pairs(std::size_t k,
                                                     SnapshotPtr snap) {
  if (!snap) snap = store_.current();
  BFC_COUNT_ADD("svc.queries", 1);
  const CacheKey key{snap->epoch, QueryKind::kTopPairs,
                     static_cast<std::int64_t>(k), 0};
  if (const auto hit = cache_.get(key)) {
    BFC_HIST_OBSERVE("svc.latency_us.top_pairs", 0);
    return ready_future(std::get<TopPairsPtr>(*hit));
  }
  return pool_.submit([this, snap = std::move(snap), key, k, timer = Timer()] {
    auto pairs = std::make_shared<const std::vector<count::VertexPair>>(
        count::top_wedge_pairs_v1(snap->graph, k));
    cache_.put(key, CacheValue{pairs});
    BFC_HIST_OBSERVE("svc.latency_us.top_pairs", timer.seconds() * 1e6);
    return TopPairsPtr(pairs);
  });
}

ButterflyService::TipVector ButterflyService::tips_for(const SnapshotPtr& snap,
                                                       bool v1_side) {
  const std::pair<std::uint64_t, bool> key{snap->epoch, v1_side};
  std::promise<TipVector> mine;
  std::shared_future<TipVector> pass;
  bool compute = false;
  {
    const std::scoped_lock lock(memo_mu_);
    const auto it = tip_memo_.find(key);
    if (it == tip_memo_.end()) {
      pass = mine.get_future().share();
      tip_memo_.emplace(key, TipPass{pass, false});
      compute = true;
    } else {
      pass = it->second.result;
      BFC_COUNT_ADD("svc.coalesced_queries", 1);
      if (!it->second.has_joiner) {
        it->second.has_joiner = true;
        BFC_COUNT_ADD("svc.coalesced_batches", 1);
      }
    }
  }
  if (compute) {
    BFC_TRACE_SCOPE(v1_side ? "svc.tip_pass_v1" : "svc.tip_pass_v2");
    BFC_COUNT_ADD("svc.tip_passes", 1);
    try {
      auto tips = std::make_shared<const std::vector<count_t>>(
          v1_side ? count::butterflies_per_v1(snap->graph)
                  : count::butterflies_per_v2(snap->graph));
      mine.set_value(std::move(tips));
    } catch (...) {
      // Drop the memo so a later query can retry, then propagate to every
      // request already coalesced onto this pass.
      {
        const std::scoped_lock lock(memo_mu_);
        tip_memo_.erase(key);
      }
      mine.set_exception(std::current_exception());
    }
  }
  return pass.get();
}

}  // namespace bfc::svc
