#include "svc/result_cache.hpp"

#include "obs/metrics.hpp"

namespace bfc::svc {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  require(capacity >= 1, "ResultCache: capacity must be >= 1");
}

std::optional<CacheValue> ResultCache::get(const CacheKey& key) {
  const std::scoped_lock lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    BFC_COUNT_ADD("svc.cache_misses", 1);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  BFC_COUNT_ADD("svc.cache_hits", 1);
  return it->second->second;
}

void ResultCache::put(const CacheKey& key, CacheValue value) {
  const std::scoped_lock lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    BFC_COUNT_ADD("svc.cache_evictions", 1);
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(key, std::move(value));
  map_.emplace(key, lru_.begin());
}

void ResultCache::invalidate_all() {
  const std::scoped_lock lock(mu_);
  map_.clear();
  lru_.clear();
  BFC_COUNT_ADD("svc.cache_invalidations", 1);
}

std::size_t ResultCache::size() const {
  const std::scoped_lock lock(mu_);
  return map_.size();
}

}  // namespace bfc::svc
