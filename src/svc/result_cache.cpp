#include "svc/result_cache.hpp"

#include "obs/metrics.hpp"

namespace bfc::svc {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  require(capacity >= 1, "ResultCache: capacity must be >= 1");
}

std::optional<CacheValue> ResultCache::get(const CacheKey& key) {
  const MutexLock lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    BFC_COUNT_ADD("svc.cache_misses", 1);
    BFC_GAUGE_SET("svc.cache_hit_rate",
                  static_cast<double>(hits_) /
                      static_cast<double>(hits_ + misses_));
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++hits_;
  BFC_COUNT_ADD("svc.cache_hits", 1);
  BFC_GAUGE_SET("svc.cache_hit_rate",
                static_cast<double>(hits_) /
                    static_cast<double>(hits_ + misses_));
  return it->second->second;
}

void ResultCache::put(const CacheKey& key, CacheValue value) {
  const MutexLock lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    BFC_COUNT_ADD("svc.cache_evictions", 1);
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(key, std::move(value));
  map_.emplace(key, lru_.begin());
}

void ResultCache::invalidate_all() {
  const MutexLock lock(mu_);
  map_.clear();
  lru_.clear();
  // New generation: the hit-rate gauge must describe post-invalidation
  // traffic only, not the mixture with the epoch that just died.
  hits_ = 0;
  misses_ = 0;
  BFC_GAUGE_SET("svc.cache_hit_rate", 0.0);
  BFC_COUNT_ADD("svc.cache_invalidations", 1);
}

void ResultCache::invalidate_older_than(std::uint64_t min_epoch) {
  const MutexLock lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.epoch < min_epoch) {
      map_.erase(it->first);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  hits_ = 0;
  misses_ = 0;
  BFC_GAUGE_SET("svc.cache_hit_rate", 0.0);
  BFC_COUNT_ADD("svc.cache_invalidations", 1);
}

std::int64_t ResultCache::hits() const {
  const MutexLock lock(mu_);
  return hits_;
}

std::int64_t ResultCache::misses() const {
  const MutexLock lock(mu_);
  return misses_;
}

double ResultCache::hit_rate() const {
  const MutexLock lock(mu_);
  if (hits_ + misses_ == 0) return 0.0;
  return static_cast<double>(hits_) / static_cast<double>(hits_ + misses_);
}

std::size_t ResultCache::size() const {
  const MutexLock lock(mu_);
  return map_.size();
}

}  // namespace bfc::svc
