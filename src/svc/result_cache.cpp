#include "svc/result_cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace bfc::svc {

ResultCache::ResultCache(std::size_t capacity, int tiers)
    : capacity_(capacity) {
  require(capacity >= 1, "ResultCache: capacity must be >= 1");
  require(tiers >= 1, "ResultCache: tiers must be >= 1");
  hits_.assign(static_cast<std::size_t>(tiers), 0);
  misses_.assign(static_cast<std::size_t>(tiers), 0);
}

double ResultCache::hit_rate_locked() const {
  std::int64_t h = 0;
  std::int64_t m = 0;
  for (std::size_t t = 0; t < hits_.size(); ++t) {
    h += hits_[t];
    m += misses_[t];
  }
  return h + m == 0 ? 0.0
                    : static_cast<double>(h) / static_cast<double>(h + m);
}

std::optional<CacheValue> ResultCache::get(const CacheKey& key) {
  const MutexLock lock(mu_);
  const std::size_t t = tier_index(key.tier);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_[t];
    BFC_COUNT_ADD("svc.cache_misses", 1);
    BFC_GAUGE_SET("svc.cache_hit_rate", hit_rate_locked());
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++hits_[t];
  BFC_COUNT_ADD("svc.cache_hits", 1);
  BFC_GAUGE_SET("svc.cache_hit_rate", hit_rate_locked());
  return it->second->second;
}

void ResultCache::put(const CacheKey& key, CacheValue value) {
  const MutexLock lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    BFC_COUNT_ADD("svc.cache_evictions", 1);
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(key, std::move(value));
  map_.emplace(key, lru_.begin());
}

void ResultCache::invalidate_all() {
  const MutexLock lock(mu_);
  map_.clear();
  lru_.clear();
  // New generation everywhere: the hit-rate gauge must describe
  // post-invalidation traffic only, not the mixture with epochs that died.
  std::fill(hits_.begin(), hits_.end(), 0);
  std::fill(misses_.begin(), misses_.end(), 0);
  BFC_GAUGE_SET("svc.cache_hit_rate", 0.0);
  BFC_COUNT_ADD("svc.cache_invalidations", 1);
}

void ResultCache::invalidate_older_than(std::uint64_t min_epoch) {
  const MutexLock lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.epoch < min_epoch) {
      map_.erase(it->first);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  // The store-wide publish retires every tier's generation at once.
  std::fill(hits_.begin(), hits_.end(), 0);
  std::fill(misses_.begin(), misses_.end(), 0);
  BFC_GAUGE_SET("svc.cache_hit_rate", 0.0);
  BFC_COUNT_ADD("svc.cache_invalidations", 1);
}

void ResultCache::invalidate_tier_older_than(int tier,
                                             std::uint64_t min_epoch) {
  const MutexLock lock(mu_);
  const std::size_t t = tier_index(tier);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (tier_index(it->first.tier) == t && it->first.epoch < min_epoch) {
      map_.erase(it->first);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  // THE point of tiers: only the published shard's generation resets; the
  // other shards keep their entries AND their hit/miss streaks, so their
  // post-publish hit rates stay meaningful.
  hits_[t] = 0;
  misses_[t] = 0;
  BFC_GAUGE_SET("svc.cache_hit_rate", hit_rate_locked());
  BFC_COUNT_ADD("svc.cache_invalidations", 1);
}

void ResultCache::invalidate_tier_keep(
    int tier, std::span<const std::uint64_t> keep_epochs) {
  const MutexLock lock(mu_);
  const std::size_t t = tier_index(tier);
  const auto kept = [&](std::uint64_t epoch) {
    return std::find(keep_epochs.begin(), keep_epochs.end(), epoch) !=
           keep_epochs.end();
  };
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (tier_index(it->first.tier) == t && !kept(it->first.epoch)) {
      map_.erase(it->first);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  hits_[t] = 0;
  misses_[t] = 0;
  BFC_GAUGE_SET("svc.cache_hit_rate", hit_rate_locked());
  BFC_COUNT_ADD("svc.cache_invalidations", 1);
}

std::int64_t ResultCache::hits() const {
  const MutexLock lock(mu_);
  std::int64_t h = 0;
  for (const std::int64_t t : hits_) h += t;
  return h;
}

std::int64_t ResultCache::misses() const {
  const MutexLock lock(mu_);
  std::int64_t m = 0;
  for (const std::int64_t t : misses_) m += t;
  return m;
}

double ResultCache::hit_rate() const {
  const MutexLock lock(mu_);
  return hit_rate_locked();
}

std::int64_t ResultCache::hits(int tier) const {
  const MutexLock lock(mu_);
  return hits_[tier_index(tier)];
}

std::int64_t ResultCache::misses(int tier) const {
  const MutexLock lock(mu_);
  return misses_[tier_index(tier)];
}

double ResultCache::hit_rate(int tier) const {
  const MutexLock lock(mu_);
  const std::size_t t = tier_index(tier);
  const std::int64_t total = hits_[t] + misses_[t];
  return total == 0 ? 0.0
                    : static_cast<double>(hits_[t]) /
                          static_cast<double>(total);
}

std::size_t ResultCache::size() const {
  const MutexLock lock(mu_);
  return map_.size();
}

}  // namespace bfc::svc
