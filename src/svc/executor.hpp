// Thread-pool executor for query requests: a fixed set of worker threads
// draining one FIFO of type-erased tasks. Deliberately independent
// of the OpenMP compute lanes — OpenMP parallelises *inside* one batch
// kernel, while this pool multiplexes *many small queries* across cores;
// mixing the two schedulers would let a single heavyweight query starve
// the latency-sensitive ones.
//
// Fault tolerance: the queue is bounded (ExecutorOptions::max_queue) and a
// full queue engages one of three load-shedding policies —
//
//   kRejectNew      refuse the incoming task (try_submit returns nullopt,
//                   submit resolves the future with OverloadError);
//   kDropOldest     evict the head of the FIFO to admit the newcomer;
//   kDeadlineAware  evict the queued task least likely to meet its
//                   deadline (expired first, then the soonest deadline);
//                   an incoming task with the soonest deadline of all is
//                   itself refused.
//
// A task whose deadline passes while queued is abandoned at dequeue time
// instead of run. Evicted/abandoned tasks resolve through their optional
// degrade callback (the service supplies a stale-epoch or sampled answer)
// or, failing that, with OverloadError. Queue depth is exported as a gauge
// (svc.queue_depth); shedding increments svc.shed / svc.rejected /
// svc.deadline_expired.
//
// Telemetry: a task admitted under an active obs::TraceContext gets one
// "svc.queue" span covering its time in the queue, closed on the thread
// that resolved it and tagged with how it left — outcome=run (a worker
// picked it up), shed (evicted by a policy or at shutdown), or deadline
// (expired while queued). Sheds and expiries also land in the flight
// recorder.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/spans.hpp"
#include "obs/trace.hpp"
#include "svc/request.hpp"
#include "util/common.hpp"
#include "util/sync.hpp"

namespace bfc::svc {

enum class ShedPolicy : std::uint8_t {
  kRejectNew = 0,
  kDropOldest,
  kDeadlineAware,
};

[[nodiscard]] inline const char* shed_policy_name(ShedPolicy p) noexcept {
  switch (p) {
    case ShedPolicy::kRejectNew: return "reject-new";
    case ShedPolicy::kDropOldest: return "drop-oldest";
    case ShedPolicy::kDeadlineAware: return "deadline-aware";
  }
  return "unknown";
}

struct ExecutorOptions {
  int threads = 4;
  std::size_t max_queue = 0;  // 0 = unbounded (the pre-robustness behaviour)
  ShedPolicy policy = ShedPolicy::kRejectNew;
};

class Executor {
 public:
  /// Unbounded-queue pool with `threads` workers (>= 1).
  explicit Executor(int threads) : Executor(ExecutorOptions{threads}) {}

  explicit Executor(const ExecutorOptions& options);

  /// Drains nothing: pending tasks that never ran are abandoned (their
  /// futures get OverloadError or their degrade fallback); running tasks
  /// finish first.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  template <typename Fn>
  using ResultOf = std::invoke_result_t<Fn>;

  /// Cheap fallback invoked instead of Fn when the task is shed or its
  /// deadline expires while queued: return a (degraded) value to resolve
  /// the future with, or nullopt to fail it with OverloadError.
  template <typename Fn>
  using FallbackOf = std::function<std::optional<ResultOf<Fn>>()>;

  /// Enqueues fn and returns a future for its result, or nullopt when
  /// admission refused it outright (kRejectNew on a full queue, or a
  /// deadline-aware comparison that picked the newcomer as the victim) —
  /// the caller then degrades synchronously. fn runs on one pool worker;
  /// exceptions propagate through the future.
  template <typename Fn>
  [[nodiscard]] auto try_submit(Fn&& fn, Deadline deadline = {},
                                FallbackOf<Fn> fallback = nullptr,
                                obs::TraceContext trace = {})
      -> std::optional<std::future<ResultOf<Fn>>> {
    using R = ResultOf<Fn>;
    auto prom = std::make_shared<std::promise<R>>();
    std::future<R> future = prom->get_future();
    Task task;
    task.deadline = deadline;
    if (obs::SpanLog::enabled() && trace.active()) {
      task.trace = trace;
      task.enqueue_ts_us = obs::Tracer::now_us();
    }
    // std::function requires copyable callables, so the packaged state
    // lives behind the shared promise pointer.
    task.run = [prom, fn = std::forward<Fn>(fn)]() mutable {
      try {
        prom->set_value(fn());
      } catch (...) {
        prom->set_exception(std::current_exception());
      }
    };
    task.abandon = [prom, fallback = std::move(fallback)](
                       OverloadError::Reason reason) {
      if (fallback) {
        try {
          if (std::optional<R> degraded = fallback()) {
            prom->set_value(std::move(*degraded));
            return;
          }
        } catch (...) {
          prom->set_exception(std::current_exception());
          return;
        }
      }
      prom->set_exception(std::make_exception_ptr(OverloadError(reason)));
    };
    if (!admit(std::move(task))) return std::nullopt;
    return future;
  }

  /// submit() never returns nullopt: an admission refusal resolves the
  /// returned future with OverloadError instead.
  template <typename Fn>
  [[nodiscard]] auto submit(Fn&& fn, Deadline deadline = {})
      -> std::future<ResultOf<Fn>> {
    using R = ResultOf<Fn>;
    if (auto future = try_submit(std::forward<Fn>(fn), deadline))
      return std::move(*future);
    std::promise<R> rejected;
    rejected.set_exception(std::make_exception_ptr(
        OverloadError(OverloadError::Reason::kRejected)));
    return rejected.get_future();
  }

  [[nodiscard]] int thread_count() const noexcept {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] std::size_t queue_limit() const noexcept { return max_queue_; }
  [[nodiscard]] ShedPolicy policy() const noexcept { return policy_; }

  /// Tasks queued but not yet picked up by a worker.
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  struct Task {
    std::function<void()> run;
    std::function<void(OverloadError::Reason)> abandon;
    Deadline deadline;
    obs::TraceContext trace;         // active -> queue-wait span on resolve
    std::int64_t enqueue_ts_us = 0;  // Tracer clock at admission
  };

  /// Closes the task's queue-wait span (no-op for untraced tasks).
  static void close_queue_span(const Task& task, const char* outcome);

  /// Applies the admission policy; returns false when the incoming task is
  /// refused. May evict a queued task (abandoned outside the lock).
  bool admit(Task task);
  void worker_loop();

  std::size_t max_queue_;
  ShedPolicy policy_;
  mutable Mutex mu_{"svc.executor"};
  CondVar cv_;
  std::deque<Task> queue_ BFC_GUARDED_BY(mu_);
  // Set once by ~Executor; workers exit without draining, honouring the
  // documented abandon-pending contract.
  bool stopping_ BFC_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace bfc::svc
