// Thread-pool executor for query requests: a fixed set of std::jthread
// workers draining one FIFO of type-erased tasks. Deliberately independent
// of the OpenMP compute lanes — OpenMP parallelises *inside* one batch
// kernel, while this pool multiplexes *many small queries* across cores;
// mixing the two schedulers would let a single heavyweight query starve
// the latency-sensitive ones. Queue depth is exported as a gauge
// (svc.queue_depth) on every push/pop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/common.hpp"

namespace bfc::svc {

class Executor {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit Executor(int threads);

  /// Drains nothing: pending tasks that never ran are abandoned (their
  /// futures get a broken_promise); running tasks finish first.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues fn and returns a future for its result. fn runs on one pool
  /// worker; exceptions propagate through the future.
  template <typename Fn>
  [[nodiscard]] auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    // std::function requires copyable callables, so the packaged state
    // lives behind a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  [[nodiscard]] int thread_count() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Tasks queued but not yet picked up by a worker.
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  void enqueue(std::function<void()> task);
  void worker_loop(const std::stop_token& stop);

  mutable std::mutex mu_;
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::jthread> workers_;  // last member: joins before the rest die
};

}  // namespace bfc::svc
