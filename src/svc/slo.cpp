#include "svc/slo.hpp"

#include <string>

#include "obs/metrics.hpp"

namespace bfc::svc {

SloTracker::SloTracker(std::array<SloPolicy, kQueryKinds> policies,
                       std::size_t window, bool bind_metrics)
    : policies_(policies), window_(window == 0 ? 1 : window) {
  for (std::size_t k = 0; k < kQueryKinds; ++k) {
    if (policies_[k].target_us <= 0.0) continue;
    enabled_ = true;
    {
      const MutexLock lock(windows_[k].mu);
      windows_[k].bad.assign(window_, false);
    }
    if constexpr (obs::kMetricsEnabled) {
      if (bind_metrics) {
        const std::string suffix = kind_name(static_cast<QueryKind>(k));
        auto& reg = obs::Registry::instance();
        violation_counters_[k] = &reg.counter("svc.slo.violations." + suffix);
        good_counters_[k] = &reg.counter("svc.slo.good." + suffix);
        burn_gauges_[k] = &reg.gauge("svc.slo.burn_rate." + suffix);
      }
    }
  }
}

void SloTracker::observe(QueryKind kind, double us) {
  const auto k = static_cast<std::size_t>(kind);
  const SloPolicy& policy = policies_[k];
  if (policy.target_us <= 0.0) return;
  const bool over = us > policy.target_us;
  double burn = 0.0;
  {
    const MutexLock lock(windows_[k].mu);
    KindWindow& w = windows_[k];
    if (w.count == window_ && w.bad[w.next]) --w.bad_count;
    w.bad[w.next] = over;
    if (over) ++w.bad_count;
    w.next = (w.next + 1) % window_;
    if (w.count < window_) ++w.count;
    if (over) ++w.violations_total;
    burn = burn_rate_locked(k);
  }
  const auto bit = std::uint32_t{1} << k;
  if (burn > 1.0) {
    over_mask_.fetch_or(bit, std::memory_order_relaxed);
  } else {
    over_mask_.fetch_and(~bit, std::memory_order_relaxed);
  }
  if (over) {
    if (violation_counters_[k] != nullptr) violation_counters_[k]->increment();
  } else {
    if (good_counters_[k] != nullptr) good_counters_[k]->increment();
  }
  if (burn_gauges_[k] != nullptr) burn_gauges_[k]->set(burn);
}

double SloTracker::burn_rate_locked(std::size_t k) const {
  const KindWindow& w = windows_[k];
  if (w.count == 0) return 0.0;
  const double bad_fraction =
      static_cast<double>(w.bad_count) / static_cast<double>(w.count);
  const double allowed = 1.0 - policies_[k].objective;
  // A 100% objective leaves no budget: any violation is an infinite burn
  // rate; report a large finite sentinel instead.
  if (allowed <= 0.0) return w.bad_count == 0 ? 0.0 : 1e9;
  return bad_fraction / allowed;
}

double SloTracker::burn_rate(QueryKind kind) const {
  const auto k = static_cast<std::size_t>(kind);
  if (policies_[k].target_us <= 0.0) return 0.0;
  const MutexLock lock(windows_[k].mu);
  return burn_rate_locked(k);
}

bool SloTracker::budget_exhausted() const {
  if (!enabled_) return false;
  return over_mask_.load(std::memory_order_relaxed) != 0;
}

std::int64_t SloTracker::violations(QueryKind kind) const {
  const auto k = static_cast<std::size_t>(kind);
  const MutexLock lock(windows_[k].mu);
  return windows_[k].violations_total;
}

}  // namespace bfc::svc
