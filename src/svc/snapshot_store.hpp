// Single-writer, many-reader snapshot store. The writer owns a
// DynamicButterflyCounter (the authoritative mutable state), applies edge
// batches through it, and publishes the result as an immutable
// GraphSnapshot behind std::atomic<std::shared_ptr>. Readers never block
// the writer and the writer never blocks readers: current() is one atomic
// shared_ptr load, and a pinned snapshot stays alive (and bit-identical)
// for as long as the reader holds it.
//
// Crash safety: persist() serialises the latest published epoch (epoch
// number, exact count, and the checksummed BFC2 graph blob) to disk with
// write-then-rename, and restore() warm-starts a store from that file —
// rebuilding the incremental counter from the persisted edges and
// cross-checking its recomputed butterfly total against the persisted one,
// so a corrupted-but-CRC-colliding file still cannot smuggle in a wrong
// count. A process kill between persist() and restore() loses at most the
// epochs published after the last persist, never the file's integrity.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>

#include "count/dynamic.hpp"
#include "svc/snapshot.hpp"
#include "util/common.hpp"
#include "util/sync.hpp"

namespace bfc::svc {

/// Outcome of one apply_batch() call.
struct PublishResult {
  std::uint64_t epoch = 0;     // epoch of the snapshot just published
  offset_t applied = 0;        // updates that changed the graph
  offset_t ignored = 0;        // duplicate inserts / missing removes
  count_t created = 0;         // butterflies created by this batch
  count_t destroyed = 0;       // butterflies destroyed by this batch
};

class SnapshotStore {
 public:
  /// Starts at epoch 0: the empty graph over fixed vertex sets. A
  /// non-negative `shard_id` marks this store as one shard of a
  /// shard::ShardedSnapshotStore: every publish then runs under its own
  /// "svc.shard.publish" root span tagged with the shard id, which is how
  /// the serving bench proves that disjoint-range shard publishes overlap
  /// in time instead of serialising. The default -1 keeps the standalone
  /// single-store behavior bit-identical.
  explicit SnapshotStore(vidx_t n1, vidx_t n2, int shard_id = -1);

  /// Applies the batch through the incremental counter, materialises the
  /// resulting graph, and publishes it as epoch current+1. Updates are
  /// applied in order; duplicate inserts and absent removes are counted in
  /// PublishResult::ignored. Serialised internally, so concurrent callers
  /// are safe — but the design intent is a single writer thread.
  PublishResult apply_batch(std::span<const EdgeUpdate> batch);
  PublishResult apply_batch(std::initializer_list<EdgeUpdate> batch) {
    return apply_batch(std::span<const EdgeUpdate>(batch.begin(), batch.end()));
  }

  /// Pins the latest published snapshot: one atomic load, never blocks on
  /// the writer.
  [[nodiscard]] SnapshotPtr current() const;

  /// Epoch of the latest published snapshot.
  [[nodiscard]] std::uint64_t epoch() const;

  /// Atomically writes the latest published snapshot to `path` (tmp file +
  /// rename): epoch, exact count, and the checksummed graph sections.
  /// Readers and the writer are never blocked — the snapshot is immutable.
  void persist(const std::string& path) const;

  /// Warm-start: replaces this store's entire state (graph, incremental
  /// counter, epoch sequence) with the persisted snapshot, so the next
  /// apply_batch publishes persisted_epoch + 1. Throws std::runtime_error
  /// on a missing/truncated/corrupted file — the store is left unchanged.
  void restore(const std::string& path);

  [[nodiscard]] vidx_t n1() const noexcept {
    // relaxed: an independent scalar, overwritten only by restore(); readers
    // needing dimensions coherent with a graph take them from a pinned
    // snapshot, not from here.
    return n1_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] vidx_t n2() const noexcept {
    return n2_.load(std::memory_order_relaxed);  // see n1()
  }

 private:
  [[nodiscard]] SnapshotPtr head_load() const;
  void head_store(SnapshotPtr snap);

  // Atomic because restore() rewrites the dimensions while concurrent
  // readers may call n1()/n2() without any lock (previously a plain-int
  // data race the annotations surfaced).
  std::atomic<vidx_t> n1_;
  std::atomic<vidx_t> n2_;
  int shard_id_ = -1;  // >= 0 when owned by a ShardedSnapshotStore
  mutable Mutex writer_mu_{"svc.store.writer"};  // apply_batch/restore
  std::uint64_t next_epoch_ BFC_GUARDED_BY(writer_mu_) = 1;
  // Writer-side mutable state.
  count::DynamicButterflyCounter counter_ BFC_GUARDED_BY(writer_mu_);
#if defined(__SANITIZE_THREAD__)
  // libstdc++'s atomic<shared_ptr> embeds a spin lock in the control word
  // that TSan cannot see through, so it reports the publish/pin pair as a
  // data race. Under TSan only, publish through a mutex it models exactly;
  // the production build keeps the atomic fast path.
  mutable Mutex head_mu_{"svc.store.head"};
  SnapshotPtr head_ BFC_GUARDED_BY(head_mu_);
#else
  std::atomic<SnapshotPtr> head_;  // latest published snapshot
#endif
};

}  // namespace bfc::svc
