// Deterministic fault injection for the serving stack. Test code arms a
// fault point — either "fire for invocations (skip, skip+times]" (fully
// deterministic) or "fire with probability p from a seeded RNG" (a
// deterministic *sequence* for a given seed) — and production code asks
// fires() at the matching seam:
//
//   kQueueSaturation  Executor::admit treats the admission queue as full
//   kSlowKernel       the service's tip pass sleeps param() milliseconds
//   kPersistTruncate  SnapshotStore::persist publishes a torn file
//                     (truncated to param() bytes, or half when 0)
//   kPersistCorrupt   persist flips one bit (byte index param()) before
//                     publishing
//   kPersistNoRename  persist writes the .tmp file then "crashes" before
//                     the atomic rename — the previous snapshot survives
//   kTransportDrop    a RemoteShard send/recv leg fails as if the peer
//                     vanished (connection refused / EOF mid-frame)
//   kTransportDelay   a RemoteShard receive leg stalls param() milliseconds
//                     before reading — long enough params trip the per-leg
//                     timeout and exercise retry/backoff deterministically
//   kShardHostCrash   bfc-shard-host _exit(137)s before replying to the
//                     current request, simulating a SIGKILLed host without
//                     an external killer
//
// Everything compiles to constant-false stubs unless -DBFC_CHECKED=ON, so
// the release hot paths carry no fault-injection branches at all; the
// checked CI lane drives the whole degradation/recovery suite through it.
#pragma once

#include <cstdint>

#include "chk/check.hpp"

namespace bfc::svc::fault {

enum class Point : std::uint8_t {
  kQueueSaturation = 0,
  kSlowKernel,
  kPersistTruncate,
  kPersistCorrupt,
  kPersistNoRename,
  kTransportDrop,
  kTransportDelay,
  kShardHostCrash,
};

inline constexpr int kPoints = 8;

#if defined(BFC_CHECKED_ENABLED) && BFC_CHECKED_ENABLED

/// Fire deterministically on invocations (skip, skip + times]; `param` is
/// the point-specific knob (sleep ms, truncation size, corrupt byte index).
void arm(Point p, std::uint64_t skip, std::uint64_t times,
         std::uint64_t param = 0);

/// Fire with probability `prob` per invocation, drawn from an RNG seeded
/// with `seed` — a reproducible fault schedule, not a flaky one.
void arm_random(Point p, double prob, std::uint64_t seed,
                std::uint64_t param = 0);

void disarm(Point p);
void reset();  // disarm every point (test fixture teardown)

/// Consumes one invocation at the fault point; true = inject the fault.
[[nodiscard]] bool fires(Point p);

/// The armed point-specific parameter (0 when unarmed).
[[nodiscard]] std::uint64_t param(Point p);

/// Faults actually injected at this point since it was last armed.
[[nodiscard]] std::uint64_t fired_count(Point p);

#else  // fault injection compiled out: constant-false, branch-free

inline void arm(Point, std::uint64_t, std::uint64_t, std::uint64_t = 0) {}
inline void arm_random(Point, double, std::uint64_t, std::uint64_t = 0) {}
inline void disarm(Point) {}
inline void reset() {}
[[nodiscard]] inline constexpr bool fires(Point) { return false; }
[[nodiscard]] inline constexpr std::uint64_t param(Point) { return 0; }
[[nodiscard]] inline constexpr std::uint64_t fired_count(Point) { return 0; }

#endif

/// RAII arming for tests: arms in the constructor, disarms on scope exit
/// so a failing assertion cannot leak a live fault into the next test.
class Scoped {
 public:
  Scoped(Point p, std::uint64_t skip, std::uint64_t times,
         std::uint64_t parameter = 0)
      : point_(p) {
    arm(p, skip, times, parameter);
  }
  ~Scoped() { disarm(point_); }
  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;

 private:
  Point point_;
};

}  // namespace bfc::svc::fault
