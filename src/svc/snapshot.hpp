// Immutable epoch-versioned graph snapshots — the unit of isolation in the
// serving layer. A single writer applies edge-update batches through the
// incremental counter and publishes one GraphSnapshot per batch; readers
// pin a snapshot with one shared_ptr copy and every query they issue is
// answered against exactly that epoch, no matter how many epochs the
// writer publishes meanwhile.
#pragma once

#include <cstdint>
#include <memory>

#include "graph/bipartite_graph.hpp"
#include "util/common.hpp"

namespace bfc::svc {

/// One edge mutation in a writer batch.
struct EdgeUpdate {
  vidx_t u = 0;
  vidx_t v = 0;
  bool insert = true;  // false = remove

  [[nodiscard]] static EdgeUpdate add(vidx_t u, vidx_t v) {
    return {u, v, true};
  }
  [[nodiscard]] static EdgeUpdate del(vidx_t u, vidx_t v) {
    return {u, v, false};
  }
};

/// Epoch 0 is the empty graph; epoch k is the state after the k-th batch.
struct GraphSnapshot {
  std::uint64_t epoch = 0;
  graph::BipartiteGraph graph;  // materialised CSR + CSC, immutable
  count_t butterflies = 0;      // exact count at this epoch (incremental)
  offset_t edges = 0;
};

/// Readers hold snapshots by shared_ptr; the graph memory lives until the
/// last pinning reader releases it.
using SnapshotPtr = std::shared_ptr<const GraphSnapshot>;

}  // namespace bfc::svc
