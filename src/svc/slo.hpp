// SLO accounting for the serving stack: each query kind can carry a latency
// objective ("99% of tip queries under 2ms"), and the tracker turns the
// stream of observed latencies into error-budget arithmetic:
//
//   burn rate = (fraction of recent requests over target) / (1 - objective)
//
// A burn rate of 1.0 means the service is spending its error budget exactly
// as fast as the objective allows; sustained > 1.0 means the SLO will be
// violated. ButterflyService::overloaded() consults budget_exhausted() in
// addition to its queue-depth and p95 thresholds, so degradation engages
// when the *objective* is at risk, not only when raw latency looks bad.
//
// Accounting is windowed (same spirit as the service's p95 ring): only the
// most recent `window` observations per kind count toward the burn rate, so
// the signal recovers once the storm passes. Published instruments (under
// BFC_METRICS=ON): svc.slo.violations.<kind> and svc.slo.good.<kind>
// counters plus a svc.slo.burn_rate.<kind> gauge per configured kind.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "svc/request.hpp"
#include "util/sync.hpp"

namespace bfc::obs {
class Counter;
class Gauge;
}  // namespace bfc::obs

namespace bfc::svc {

/// Per-kind objective. target_us == 0 disables tracking for that kind.
struct SloPolicy {
  double target_us = 0.0;   // latency target; 0 = no objective
  double objective = 0.99;  // fraction of requests that must meet it
};

class SloTracker {
 public:
  static constexpr std::size_t kDefaultWindow = 256;

  /// `bind_metrics` = false skips binding the svc.slo.* instruments — the
  /// sharded service runs one tracker per shard, and only the store-wide
  /// tracker may own the global gauges (per-shard trackers would fight
  /// over them, each publish overwriting the others' burn rates).
  explicit SloTracker(std::array<SloPolicy, kQueryKinds> policies,
                      std::size_t window = kDefaultWindow,
                      bool bind_metrics = true);

  /// True when at least one kind carries a real objective.
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Records one completed request's latency against its kind's objective.
  /// No-op for kinds without a target.
  void observe(QueryKind kind, double us);

  /// Windowed burn rate for one kind (0 when untracked or no data yet).
  [[nodiscard]] double burn_rate(QueryKind kind) const;

  /// True when any tracked kind's windowed burn rate exceeds 1.0 — the
  /// error budget is being spent faster than the objective permits.
  [[nodiscard]] bool budget_exhausted() const;

  /// Total over-target observations for one kind since construction.
  [[nodiscard]] std::int64_t violations(QueryKind kind) const;

  [[nodiscard]] const SloPolicy& policy(QueryKind kind) const noexcept {
    return policies_[static_cast<std::size_t>(kind)];
  }

 private:
  // One mutex per kind: observe() is on the per-query hot path, and the
  // kinds never nest, so sharding the lock removes cross-kind contention.
  // The over-target tally is maintained incrementally (O(1) per observe;
  // the full ring is never rescanned), and the exhaustion verdict is
  // mirrored into a lock-free bitmask so overloaded() — called at every
  // admission — never touches a mutex.
  struct KindWindow {
    mutable Mutex mu{"svc.slo"};
    std::vector<bool> bad BFC_GUARDED_BY(mu);  // ring of over-target flags
    std::size_t next BFC_GUARDED_BY(mu) = 0;
    std::size_t count BFC_GUARDED_BY(mu) = 0;
    std::size_t bad_count BFC_GUARDED_BY(mu) = 0;
    std::int64_t violations_total BFC_GUARDED_BY(mu) = 0;
  };

  [[nodiscard]] double burn_rate_locked(std::size_t k) const
      BFC_REQUIRES(windows_[k].mu);

  std::array<SloPolicy, kQueryKinds> policies_;
  std::size_t window_;
  bool enabled_ = false;
  std::array<KindWindow, kQueryKinds> windows_;
  // Bit k set while kind k's windowed burn rate exceeds 1.0.
  std::atomic<std::uint32_t> over_mask_{0};
  // Bound once at construction (names are per-kind, so the literal-only
  // BFC_* macros don't apply); null when metrics are compiled out or the
  // kind is untracked.
  std::array<obs::Counter*, kQueryKinds> violation_counters_{};
  std::array<obs::Counter*, kQueryKinds> good_counters_{};
  std::array<obs::Gauge*, kQueryKinds> burn_gauges_{};
};

}  // namespace bfc::svc
