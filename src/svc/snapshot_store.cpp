#include "svc/snapshot_store.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <utility>

#include "chk/validate.hpp"
#include "graph/io_binary.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "obs/trace.hpp"
#include "sparse/ops.hpp"
#include "svc/fault.hpp"
#include "util/crc32.hpp"

namespace bfc::svc {
namespace {

// Snapshot-file envelope around the BFC2 graph blob: magic, version, then
// a CRC-checked epoch/count/edges trailer the graph format knows nothing
// about. The embedded graph sections carry their own per-section CRCs.
constexpr std::array<char, 8> kSnapMagic = {'B', 'F', 'C', 'S',
                                            'N', 'P', '0', '1'};

struct SnapMeta {
  std::uint64_t epoch;
  count_t butterflies;
  offset_t edges;
};
static_assert(sizeof(SnapMeta) == 24, "snapshot meta must pack to 24 bytes");

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in, const std::string& path, const char* what) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (static_cast<std::size_t>(in.gcount()) != sizeof value)
    throw std::runtime_error("snapshot " + path + ": truncated " + what);
  return value;
}

}  // namespace

SnapshotStore::SnapshotStore(vidx_t n1, vidx_t n2, int shard_id)
    : n1_(n1), n2_(n2), shard_id_(shard_id), counter_(n1, n2) {
  auto genesis = std::make_shared<GraphSnapshot>();
  genesis->epoch = 0;
  genesis->graph = counter_.to_graph();
  genesis->butterflies = 0;
  genesis->edges = 0;
  head_store(std::move(genesis));
}

SnapshotPtr SnapshotStore::head_load() const {
#if defined(__SANITIZE_THREAD__)
  const MutexLock lock(head_mu_);
  return head_;
#else
  // acquire: pairs with the release store in head_store so a pinned
  // snapshot's contents are fully visible to the reader.
  return head_.load(std::memory_order_acquire);
#endif
}

void SnapshotStore::head_store(SnapshotPtr snap) {
#if defined(__SANITIZE_THREAD__)
  const MutexLock lock(head_mu_);
  head_ = std::move(snap);
#else
  // release: publishes the fully constructed snapshot (see head_load).
  head_.store(std::move(snap), std::memory_order_release);
#endif
}

PublishResult SnapshotStore::apply_batch(std::span<const EdgeUpdate> batch) {
  BFC_TRACE_SCOPE("svc.publish");
  // Shard-owned stores root every publish in its own trace (no head
  // sampling: publishes are writer-side and rare, and the sharded bench's
  // concurrency self-check needs to see every one). Standalone stores keep
  // the span inert — identical behavior to the pre-shard code.
  obs::TraceContext pub_ctx;
  if (shard_id_ >= 0 && obs::SpanLog::enabled())
    pub_ctx = obs::TraceContext::root();
  obs::Span pub_span(pub_ctx, "svc.shard.publish");
  const MutexLock lock(writer_mu_);

  PublishResult result;
  for (const EdgeUpdate& up : batch) {
    if (up.insert) {
      const bool present = counter_.has_edge(up.u, up.v);
      result.created += counter_.insert(up.u, up.v);
      present ? ++result.ignored : ++result.applied;
    } else {
      const bool present = counter_.has_edge(up.u, up.v);
      result.destroyed += counter_.remove(up.u, up.v);
      present ? ++result.applied : ++result.ignored;
    }
  }

  auto snap = std::make_shared<GraphSnapshot>();
  snap->epoch = next_epoch_++;
  snap->graph = counter_.to_graph();
  snap->butterflies = counter_.butterflies();
  snap->edges = counter_.edge_count();
  result.epoch = snap->epoch;

  // Checked build: the batch just mutated the counter, so re-verify its
  // internal structure, the snapshot it materialised (including a recount
  // of the incremental butterfly total), and the epoch transition before
  // any reader can pin the new head.
  if constexpr (chk::kCheckedEnabled) {
    chk::validate(counter_);
    chk::validate(*snap);
    chk::validate_epoch_transition(*head_load(), *snap);
  }

  head_store(std::move(snap));
  if (pub_span.armed()) {
    pub_span.tag("shard", std::to_string(shard_id_));
    pub_span.tag("epoch", std::to_string(result.epoch));
  }
  BFC_COUNT_ADD("svc.epochs_published", 1);
  BFC_COUNT_ADD("svc.updates_applied", result.applied);
  return result;
}

SnapshotPtr SnapshotStore::current() const { return head_load(); }

std::uint64_t SnapshotStore::epoch() const { return head_load()->epoch; }

void SnapshotStore::persist(const std::string& path) const {
  BFC_TRACE_SCOPE("svc.persist");
  // Pin once: everything below reads the immutable snapshot, so the writer
  // keeps publishing and readers keep answering while we serialise.
  const SnapshotPtr snap = head_load();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write snapshot: " + tmp);
    out.write(kSnapMagic.data(), kSnapMagic.size());
    write_pod(out, graph::kBinaryFormatVersion);
    const SnapMeta meta{snap->epoch, snap->butterflies, snap->edges};
    write_pod(out, crc32(&meta, sizeof meta));
    write_pod(out, meta);
    graph::write_binary(out, snap->graph);
    out.flush();
    if (!out) throw std::runtime_error("write failed for snapshot: " + tmp);
  }

  // Fault injection (checked builds): manufacture the crash modes the
  // restore path must reject or survive.
  if (fault::fires(fault::Point::kPersistTruncate)) {
    const auto full = std::filesystem::file_size(tmp);
    const std::uint64_t keep = fault::param(fault::Point::kPersistTruncate);
    std::filesystem::resize_file(tmp, keep != 0 ? keep : full / 2);
  }
  if (fault::fires(fault::Point::kPersistCorrupt)) {
    std::fstream f(tmp, std::ios::binary | std::ios::in | std::ios::out);
    const auto size =
        static_cast<std::uint64_t>(std::filesystem::file_size(tmp));
    const std::uint64_t at = fault::param(fault::Point::kPersistCorrupt) %
                             (size != 0 ? size : 1);
    f.seekg(static_cast<std::streamoff>(at));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x20);
    f.seekp(static_cast<std::streamoff>(at));
    f.write(&byte, 1);
  }
  if (fault::fires(fault::Point::kPersistNoRename)) {
    // Simulated crash between flush and rename: the tmp file is torn off
    // mid-publish and the previously persisted snapshot stays authoritative.
    return;
  }

  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot publish snapshot (rename " + tmp +
                             " -> " + path + " failed)");
  }
  BFC_COUNT_ADD("svc.snapshots_persisted", 1);
  BFC_GAUGE_SET("svc.persisted_epoch", snap->epoch);
}

void SnapshotStore::restore(const std::string& path) {
  BFC_TRACE_SCOPE("svc.restore");
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open snapshot: " + path);

  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (static_cast<std::size_t>(in.gcount()) != magic.size() ||
      std::memcmp(magic.data(), kSnapMagic.data(), kSnapMagic.size()) != 0)
    throw std::runtime_error("snapshot " + path + ": bad magic");
  const auto version = read_pod<std::uint32_t>(in, path, "version");
  if (version != graph::kBinaryFormatVersion)
    throw std::runtime_error("snapshot " + path +
                             ": unsupported format version " +
                             std::to_string(version));
  const auto meta_crc = read_pod<std::uint32_t>(in, path, "meta CRC");
  const auto meta = read_pod<SnapMeta>(in, path, "meta section");
  if (crc32(&meta, sizeof meta) != meta_crc)
    throw std::runtime_error("snapshot " + path + ": meta CRC mismatch");

  // The graph blob carries its own per-section CRCs; read_binary reports
  // the path and byte offset on any truncation or mismatch.
  graph::BipartiteGraph g = graph::read_binary(in, path);
  if (g.edge_count() != meta.edges)
    throw std::runtime_error(
        "snapshot " + path + ": edge count mismatch (meta says " +
        std::to_string(meta.edges) + ", graph has " +
        std::to_string(g.edge_count()) + ")");

  // Rebuild the incremental counter from the persisted edges. The rebuild
  // recomputes the butterfly count from scratch, so a file whose sections
  // all pass CRC but disagree with the recorded count is still rejected —
  // the count in RAM after restore is never taken on faith.
  count::DynamicButterflyCounter counter(g.n1(), g.n2());
  for (const auto& [u, v] : sparse::edges(g.csr())) counter.insert(u, v);
  if (counter.butterflies() != meta.butterflies)
    throw std::runtime_error(
        "snapshot " + path + ": butterfly count mismatch (meta says " +
        std::to_string(meta.butterflies) + ", recount gives " +
        std::to_string(counter.butterflies()) + ")");

  auto snap = std::make_shared<GraphSnapshot>();
  snap->epoch = meta.epoch;
  snap->graph = std::move(g);
  snap->butterflies = meta.butterflies;
  snap->edges = meta.edges;
  if constexpr (chk::kCheckedEnabled) {
    chk::validate(counter);
    chk::validate(*snap);
  }

  // All validation passed — only now touch the store's state.
  const MutexLock lock(writer_mu_);
  // relaxed: see the n1()/n2() accessors — dimension reads are independent.
  n1_.store(snap->graph.n1(), std::memory_order_relaxed);
  n2_.store(snap->graph.n2(), std::memory_order_relaxed);
  counter_ = std::move(counter);
  next_epoch_ = meta.epoch + 1;
  head_store(std::move(snap));
  BFC_COUNT_ADD("svc.snapshots_restored", 1);
}

}  // namespace bfc::svc
