#include "svc/snapshot_store.hpp"

#include <memory>
#include <utility>

#include "chk/validate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bfc::svc {

SnapshotStore::SnapshotStore(vidx_t n1, vidx_t n2)
    : n1_(n1), n2_(n2), counter_(n1, n2) {
  auto genesis = std::make_shared<GraphSnapshot>();
  genesis->epoch = 0;
  genesis->graph = counter_.to_graph();
  genesis->butterflies = 0;
  genesis->edges = 0;
  head_store(std::move(genesis));
}

SnapshotPtr SnapshotStore::head_load() const {
#if defined(__SANITIZE_THREAD__)
  const std::scoped_lock lock(head_mu_);
  return head_;
#else
  return head_.load(std::memory_order_acquire);
#endif
}

void SnapshotStore::head_store(SnapshotPtr snap) {
#if defined(__SANITIZE_THREAD__)
  const std::scoped_lock lock(head_mu_);
  head_ = std::move(snap);
#else
  head_.store(std::move(snap), std::memory_order_release);
#endif
}

PublishResult SnapshotStore::apply_batch(std::span<const EdgeUpdate> batch) {
  BFC_TRACE_SCOPE("svc.publish");
  const std::scoped_lock lock(writer_mu_);

  PublishResult result;
  for (const EdgeUpdate& up : batch) {
    if (up.insert) {
      const bool present = counter_.has_edge(up.u, up.v);
      result.created += counter_.insert(up.u, up.v);
      present ? ++result.ignored : ++result.applied;
    } else {
      const bool present = counter_.has_edge(up.u, up.v);
      result.destroyed += counter_.remove(up.u, up.v);
      present ? ++result.applied : ++result.ignored;
    }
  }

  auto snap = std::make_shared<GraphSnapshot>();
  snap->epoch = next_epoch_++;
  snap->graph = counter_.to_graph();
  snap->butterflies = counter_.butterflies();
  snap->edges = counter_.edge_count();
  result.epoch = snap->epoch;

  // Checked build: the batch just mutated the counter, so re-verify its
  // internal structure, the snapshot it materialised (including a recount
  // of the incremental butterfly total), and the epoch transition before
  // any reader can pin the new head.
  if constexpr (chk::kCheckedEnabled) {
    chk::validate(counter_);
    chk::validate(*snap);
    chk::validate_epoch_transition(*head_load(), *snap);
  }

  head_store(std::move(snap));
  BFC_COUNT_ADD("svc.epochs_published", 1);
  BFC_COUNT_ADD("svc.updates_applied", result.applied);
  return result;
}

SnapshotPtr SnapshotStore::current() const { return head_load(); }

std::uint64_t SnapshotStore::epoch() const { return head_load()->epoch; }

}  // namespace bfc::svc
