// Query vocabulary of the serving layer: the request shapes the counting
// stack answers in production (Shi & Shun's and Wang et al.'s workhorse
// statistics) — the global count, per-vertex tip numbers, per-edge wing
// support, and top-k wedge pairs.
#pragma once

#include <cstdint>
#include <string>

#include "util/common.hpp"

namespace bfc::svc {

enum class QueryKind : std::uint8_t {
  kGlobalCount = 0,  // Ξ_G of the pinned snapshot
  kVertexTipV1,      // butterflies containing one V1 vertex (Eq. 19)
  kVertexTipV2,      // butterflies containing one V2 vertex
  kEdgeSupport,      // butterflies containing one edge (Eq. 25); 0 if absent
  kTopPairs,         // k V1-pairs with the most wedges
};

inline constexpr int kQueryKinds = 5;

/// Stable label used for metric names, latency tables and reports.
[[nodiscard]] inline const char* kind_name(QueryKind k) noexcept {
  switch (k) {
    case QueryKind::kGlobalCount: return "global";
    case QueryKind::kVertexTipV1: return "tip_v1";
    case QueryKind::kVertexTipV2: return "tip_v2";
    case QueryKind::kEdgeSupport: return "edge";
    case QueryKind::kTopPairs: return "top_pairs";
  }
  return "unknown";
}

}  // namespace bfc::svc
