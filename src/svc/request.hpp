// Query vocabulary of the serving layer: the request shapes the counting
// stack answers in production (Shi & Shun's and Wang et al.'s workhorse
// statistics) — the global count, per-vertex tip numbers, per-edge wing
// support, and top-k wedge pairs — plus the fault-tolerance vocabulary
// every query carries: a per-request Deadline, the Request envelope
// (pinned snapshot + deadline), the QueryResult fidelity tag that makes
// degraded-mode answers explicit, and OverloadError, the one exception a
// caller sees when the admission queue sheds its work outright.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/spans.hpp"
#include "shard/view.hpp"
#include "svc/snapshot.hpp"
#include "util/cancel.hpp"
#include "util/common.hpp"

namespace bfc::svc {

enum class QueryKind : std::uint8_t {
  kGlobalCount = 0,  // Ξ_G of the pinned snapshot
  kVertexTipV1,      // butterflies containing one V1 vertex (Eq. 19)
  kVertexTipV2,      // butterflies containing one V2 vertex
  kEdgeSupport,      // butterflies containing one edge (Eq. 25); 0 if absent
  kTopPairs,         // k V1-pairs with the most wedges
};

inline constexpr int kQueryKinds = 5;

/// Stable label used for metric names, latency tables and reports.
[[nodiscard]] inline const char* kind_name(QueryKind k) noexcept {
  switch (k) {
    case QueryKind::kGlobalCount: return "global";
    case QueryKind::kVertexTipV1: return "tip_v1";
    case QueryKind::kVertexTipV2: return "tip_v2";
    case QueryKind::kEdgeSupport: return "edge";
    case QueryKind::kTopPairs: return "top_pairs";
  }
  return "unknown";
}

/// Wall-clock budget of one request. Unarmed (the default) means "no
/// deadline". Carried through the Executor queue — tasks whose deadline
/// passes before a worker picks them up are abandoned, not run — and into
/// the tip/wing kernels as a CancelToken so an in-flight scan gives up
/// cooperatively instead of finishing work nobody is waiting for.
class Deadline {
 public:
  using Clock = CancelToken::Clock;

  Deadline() = default;  // no deadline

  [[nodiscard]] static Deadline at(Clock::time_point t) noexcept {
    Deadline d;
    d.at_ = t;
    d.armed_ = true;
    return d;
  }

  /// Deadline `budget` from now, e.g. Deadline::after(5ms).
  [[nodiscard]] static Deadline after(Clock::duration budget) noexcept {
    return at(Clock::now() + budget);
  }

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] bool expired() const noexcept {
    return armed_ && Clock::now() >= at_;
  }
  [[nodiscard]] Clock::time_point time() const noexcept { return at_; }

  /// The kernel-side view of this deadline (unarmed -> never-firing token).
  [[nodiscard]] CancelToken token() const noexcept {
    return armed_ ? CancelToken(at_) : CancelToken();
  }

 private:
  Clock::time_point at_{};
  bool armed_ = false;
};

/// Per-query envelope: which epoch to answer against (empty = pin the
/// latest at submission) and how long the caller is willing to wait.
/// Implicitly constructible from a SnapshotPtr so the common
/// `service.vertex_tip_v1(u, snap)` call sites read naturally.
struct Request {
  SnapshotPtr snap{};
  /// Sharded pinning: against a service running with more than one shard,
  /// queries answer from this pinned ShardView (empty = pin the latest at
  /// submission), and `snap` — a single-store concept with no cross-shard
  /// meaning — is ignored. Single-shard services ignore `view` instead.
  shard::ShardViewPtr view{};
  Deadline deadline{};
  /// Telemetry identity. Inactive (the default) makes the service root a
  /// fresh trace when span collection is on; a caller that owns a wider
  /// trace (one bench iteration, one RPC) passes its own context so the
  /// query's spans parent into it.
  obs::TraceContext trace{};

  Request() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): a bare pinned snapshot IS
  // a request; forcing Request{snap, {}} on every call site buys nothing.
  Request(SnapshotPtr s) : snap(std::move(s)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): same for a pinned view.
  Request(shard::ShardViewPtr v) : view(std::move(v)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Request(Deadline d) : deadline(d) {}
  Request(SnapshotPtr s, Deadline d) : snap(std::move(s)), deadline(d) {}
  Request(shard::ShardViewPtr v, Deadline d)
      : view(std::move(v)), deadline(d) {}
};

/// How trustworthy a query answer is. Anything other than kExact means the
/// service degraded under pressure rather than shedding the request.
enum class Fidelity : std::uint8_t {
  kExact = 0,  // exact value at the result's epoch
  kStale,      // exact value, but from an older (already retired) epoch
  kApprox,     // sampled estimate (Sanei-Mehri et al. style) at the epoch
};

[[nodiscard]] inline const char* fidelity_name(Fidelity f) noexcept {
  switch (f) {
    case Fidelity::kExact: return "exact";
    case Fidelity::kStale: return "stale";
    case Fidelity::kApprox: return "approx";
  }
  return "unknown";
}

/// Every service query resolves to one of these: the value, the epoch it
/// actually reflects (== the pinned epoch unless fidelity is kStale), and
/// the explicit degradation tag.
template <typename T>
struct QueryResult {
  T value{};
  std::uint64_t epoch = 0;
  Fidelity fidelity = Fidelity::kExact;
  // Per-shard fidelity (sharded serving only): bit k set means shard k's
  // contribution came from its last known snapshot because the shard was
  // unreachable (open circuit) when the view was pinned. Nonzero implies
  // fidelity != kExact for queries whose answer touches those ranges;
  // single-store answers always leave it 0.
  std::uint64_t stale_shards = 0;

  [[nodiscard]] bool degraded() const noexcept {
    return fidelity != Fidelity::kExact;
  }
};

/// Raised through a query future when the request was shed and no degraded
/// answer could be produced: refused at admission (kRejected), evicted
/// from the queue by a shedding policy (kShed), or abandoned because its
/// deadline passed before a worker picked it up (kDeadline).
class OverloadError : public std::runtime_error {
 public:
  enum class Reason : std::uint8_t { kRejected = 0, kShed, kDeadline };

  explicit OverloadError(Reason reason)
      : std::runtime_error(std::string("query shed under overload: ") +
                           reason_name(reason)),
        reason_(reason) {}

  [[nodiscard]] Reason reason() const noexcept { return reason_; }

  [[nodiscard]] static const char* reason_name(Reason r) noexcept {
    switch (r) {
      case Reason::kRejected: return "rejected at admission";
      case Reason::kShed: return "evicted from the queue";
      case Reason::kDeadline: return "deadline expired before start";
    }
    return "unknown";
  }

 private:
  Reason reason_;
};

}  // namespace bfc::svc
