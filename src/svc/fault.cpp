#include "svc/fault.hpp"

#if defined(BFC_CHECKED_ENABLED) && BFC_CHECKED_ENABLED

#include <array>

#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace bfc::svc::fault {
namespace {

struct PointState {
  bool armed = false;
  bool random = false;
  std::uint64_t skip = 0;
  std::uint64_t times = 0;
  std::uint64_t parameter = 0;
  std::uint64_t invocations = 0;
  std::uint64_t fired = 0;
  double prob = 0.0;
  Rng rng{0};
};

// One mutex for all points: fault checks sit on seams (admission, publish,
// persist) that are far from per-wedge hot loops, and the checked build
// already trades speed for determinism.
Mutex g_mu{"svc.fault"};
std::array<PointState, kPoints> g_points BFC_GUARDED_BY(g_mu);

PointState& state_of(Point p) BFC_REQUIRES(g_mu) {
  return g_points[static_cast<std::size_t>(p)];
}

}  // namespace

void arm(Point p, std::uint64_t skip, std::uint64_t times,
         std::uint64_t param) {
  const MutexLock lock(g_mu);
  PointState& s = state_of(p);
  s = PointState{};
  s.armed = true;
  s.skip = skip;
  s.times = times;
  s.parameter = param;
}

void arm_random(Point p, double prob, std::uint64_t seed,
                std::uint64_t param) {
  require(prob >= 0.0 && prob <= 1.0,
          "fault::arm_random: prob must be in [0, 1]");
  const MutexLock lock(g_mu);
  PointState& s = state_of(p);
  s = PointState{};
  s.armed = true;
  s.random = true;
  s.prob = prob;
  s.rng = Rng(seed);
  s.parameter = param;
}

void disarm(Point p) {
  const MutexLock lock(g_mu);
  state_of(p) = PointState{};
}

void reset() {
  const MutexLock lock(g_mu);
  for (PointState& s : g_points) s = PointState{};
}

bool fires(Point p) {
  const MutexLock lock(g_mu);
  PointState& s = state_of(p);
  if (!s.armed) return false;
  ++s.invocations;
  const bool fire = s.random
                        ? s.rng.uniform() < s.prob
                        : s.invocations > s.skip && s.fired < s.times;
  if (fire) {
    ++s.fired;
    BFC_COUNT_ADD("svc.faults_injected", 1);
  }
  return fire;
}

std::uint64_t param(Point p) {
  const MutexLock lock(g_mu);
  return state_of(p).parameter;
}

std::uint64_t fired_count(Point p) {
  const MutexLock lock(g_mu);
  return state_of(p).fired;
}

}  // namespace bfc::svc::fault

#endif  // BFC_CHECKED_ENABLED
