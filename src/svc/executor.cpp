#include "svc/executor.hpp"

#include <algorithm>
#include <chrono>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "svc/fault.hpp"
#include "util/parallel.hpp"

namespace bfc::svc {

void Executor::close_queue_span(const Task& task, const char* outcome) {
  if (!obs::SpanLog::enabled() || !task.trace.active()) return;
  obs::SpanRecord rec;
  rec.trace_id = task.trace.trace_id;
  rec.parent_id = task.trace.span_id;
  rec.span_id = obs::SpanLog::next_id();
  rec.name = "svc.queue";
  rec.ts_us = task.enqueue_ts_us;
  rec.dur_us = obs::Tracer::now_us() - task.enqueue_ts_us;
  rec.tid = thread_id();
  rec.add_tag("outcome", outcome);
  obs::SpanLog::record(std::move(rec));
}

Executor::Executor(const ExecutorOptions& options)
    : max_queue_(options.max_queue), policy_(options.policy) {
  require(options.threads >= 1, "Executor: threads must be >= 1");
  workers_.reserve(static_cast<std::size_t>(options.threads));
  for (int t = 0; t < options.threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

Executor::~Executor() {
  // Flag the shutdown, wake every parked worker, and join. Workers exit
  // without draining — this is the documented contract (pending tasks are
  // abandoned, running tasks finish first); the pre-stopping_ implementation
  // let workers drain the whole queue after the stop request, which made
  // destruction latency proportional to the backlog and the abandon loop
  // below dead code.
  {
    const MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  std::deque<Task> leftovers;
  {
    // All workers have exited, but take the lock anyway: it is uncontended,
    // and the analysis then proves the access instead of trusting a comment.
    const MutexLock lock(mu_);
    leftovers.swap(queue_);
  }
  // Abandon callbacks may do real (if bounded) work — never under mu_.
  for (Task& task : leftovers) {
    close_queue_span(task, "shed");
    task.abandon(OverloadError::Reason::kShed);
  }
}

std::size_t Executor::queue_depth() const {
  const MutexLock lock(mu_);
  return queue_.size();
}

bool Executor::admit(Task task) {
  Task victim;
  bool have_victim = false;
  {
    const MutexLock lock(mu_);
    bool full = max_queue_ != 0 && queue_.size() >= max_queue_;
    if (fault::fires(fault::Point::kQueueSaturation)) full = true;
    if (full && !queue_.empty()) {
      switch (policy_) {
        case ShedPolicy::kRejectNew:
          BFC_COUNT_ADD("svc.rejected", 1);
          obs::FlightRecorder::record(
              "reject", shed_policy_name(policy_),
              static_cast<std::int64_t>(queue_.size()), 0,
              task.trace.trace_id);
          return false;
        case ShedPolicy::kDropOldest:
          victim = std::move(queue_.front());
          queue_.pop_front();
          have_victim = true;
          break;
        case ShedPolicy::kDeadlineAware: {
          // Shed the task least likely to make its deadline: an already
          // expired one if any, else the one closest to expiry (tasks
          // without a deadline never lose to one that still has time).
          // When the incoming task's own deadline is the soonest of all,
          // it is the doomed one — refuse it instead of evicting work
          // that could still finish.
          auto expired = std::find_if(
              queue_.begin(), queue_.end(),
              [](const Task& t) { return t.deadline.expired(); });
          auto it = expired != queue_.end()
                        ? expired
                        : std::min_element(
                              queue_.begin(), queue_.end(),
                              [](const Task& a, const Task& b) {
                                if (a.deadline.armed() != b.deadline.armed())
                                  return a.deadline.armed();
                                if (!a.deadline.armed()) return false;
                                return a.deadline.time() < b.deadline.time();
                              });
          const bool incoming_sooner =
              expired == queue_.end() && task.deadline.armed() &&
              (!it->deadline.armed() ||
               task.deadline.time() < it->deadline.time());
          if (incoming_sooner) {
            BFC_COUNT_ADD("svc.rejected", 1);
            obs::FlightRecorder::record(
                "reject", "deadline-aware-incoming",
                static_cast<std::int64_t>(queue_.size()), 0,
                task.trace.trace_id);
            return false;
          }
          victim = std::move(*it);
          queue_.erase(it);
          have_victim = true;
          break;
        }
      }
      BFC_COUNT_ADD("svc.shed", 1);
    } else if (full) {
      // Queue forced "full" while actually empty (fault injection with
      // max_queue 0 workers idle): there is nothing to evict, so every
      // policy degenerates to reject-new.
      BFC_COUNT_ADD("svc.rejected", 1);
      obs::FlightRecorder::record("reject", "queue-empty-full", 0, 0,
                                  task.trace.trace_id);
      return false;
    }
    queue_.push_back(std::move(task));
    BFC_GAUGE_SET("svc.queue_depth", queue_.size());
  }
  cv_.notify_one();
  // The victim's fallback may do real (if bounded) work — never under mu_.
  if (have_victim) {
    close_queue_span(victim, "shed");
    obs::FlightRecorder::record("shed", shed_policy_name(policy_), 0, 0,
                                victim.trace.trace_id);
    victim.abandon(OverloadError::Reason::kShed);
  }
  return true;
}

void Executor::worker_loop() {
  MutexLock lock(mu_);
  for (;;) {
    while (queue_.empty() && !stopping_) cv_.wait(lock);
    if (stopping_) return;  // ~Executor abandons whatever is still queued
    Task task = std::move(queue_.front());
    queue_.pop_front();
    BFC_GAUGE_SET("svc.queue_depth", queue_.size());
    lock.unlock();
    // Deadline-abandon checkpoint: work that expired while queued is not
    // worth starting — resolve it degraded (or with OverloadError) and
    // move straight to the next task.
    if (task.deadline.expired()) {
      BFC_COUNT_ADD("svc.deadline_expired", 1);
      close_queue_span(task, "deadline");
      obs::FlightRecorder::record("deadline", "expired-in-queue", 0, 0,
                                  task.trace.trace_id);
      task.abandon(OverloadError::Reason::kDeadline);
    } else {
      close_queue_span(task, "run");
      task.run();
    }
    lock.lock();
  }
}

}  // namespace bfc::svc
