#include "svc/executor.hpp"

#include "obs/metrics.hpp"

namespace bfc::svc {

Executor::Executor(int threads) {
  require(threads >= 1, "Executor: threads must be >= 1");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    workers_.emplace_back(
        [this](const std::stop_token& stop) { worker_loop(stop); });
}

Executor::~Executor() {
  // jthread destructors request_stop() and join; the stop_token wakes any
  // worker parked in the condition-variable wait below.
  for (std::jthread& w : workers_) w.request_stop();
}

std::size_t Executor::queue_depth() const {
  const std::scoped_lock lock(mu_);
  return queue_.size();
}

void Executor::enqueue(std::function<void()> task) {
  {
    const std::scoped_lock lock(mu_);
    queue_.push_back(std::move(task));
    BFC_GAUGE_SET("svc.queue_depth", queue_.size());
  }
  cv_.notify_one();
}

void Executor::worker_loop(const std::stop_token& stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      // Returns false only when stop was requested with the queue empty.
      if (!cv_.wait(lock, stop, [this] { return !queue_.empty(); })) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      BFC_GAUGE_SET("svc.queue_depth", queue_.size());
    }
    task();
  }
}

}  // namespace bfc::svc
