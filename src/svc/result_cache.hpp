// Bounded LRU cache over query results, keyed by (epoch, kind, argument).
// Because the key includes the epoch and snapshots are immutable, a cached
// entry can never be stale — entries for old epochs are merely useless once
// every reader has moved on, so the service invalidates the cache wholesale
// on each publish rather than tracking per-entry liveness. Hits and misses
// are exported through the obs registry (svc.cache_hits / svc.cache_misses).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "count/top_pairs.hpp"
#include "svc/request.hpp"
#include "util/common.hpp"

namespace bfc::svc {

struct CacheKey {
  std::uint64_t epoch = 0;
  QueryKind kind = QueryKind::kGlobalCount;
  std::int64_t a = 0;  // vertex / edge endpoint / k, kind-dependent
  std::int64_t b = 0;  // second edge endpoint; 0 otherwise
  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  [[nodiscard]] std::size_t operator()(const CacheKey& k) const noexcept {
    // splitmix64-style mixing of the four fields.
    auto mix = [](std::uint64_t x) noexcept {
      x += 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    };
    std::uint64_t h = mix(k.epoch);
    h = mix(h ^ static_cast<std::uint64_t>(k.kind));
    h = mix(h ^ static_cast<std::uint64_t>(k.a));
    h = mix(h ^ static_cast<std::uint64_t>(k.b));
    return static_cast<std::size_t>(h);
  }
};

/// Scalar answers (count / tip / support) or a shared top-k pair list.
using CacheValue =
    std::variant<count_t,
                 std::shared_ptr<const std::vector<count::VertexPair>>>;

class ResultCache {
 public:
  /// `capacity` = maximum number of entries (>= 1).
  explicit ResultCache(std::size_t capacity);

  /// Returns the value and refreshes its recency, or nullopt on miss.
  [[nodiscard]] std::optional<CacheValue> get(const CacheKey& key);

  /// Inserts or refreshes; evicts the least-recently-used entry when full.
  void put(const CacheKey& key, CacheValue value);

  /// Drops every entry (epoch publish). Counters are left running.
  void invalidate_all();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  using Entry = std::pair<CacheKey, CacheValue>;

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> map_;
};

}  // namespace bfc::svc
