// Bounded LRU cache over query results, keyed by (epoch, kind, argument).
// Because the key includes the epoch and snapshots are immutable, a cached
// entry can never serve a *wrong* answer — entries for old epochs are merely
// old. The service exploits that for graceful degradation: on publish it
// calls invalidate_older_than(epoch - 1), keeping exactly the just-retired
// epoch's entries as the stale-answer tier of the degradation ladder while
// dropping everything older.
//
// Counters: cumulative hits/misses go to the obs registry (svc.cache_hits /
// svc.cache_misses). The cache additionally keeps *generation-scoped*
// hit/miss counts that reset on every invalidation, so the post-publish
// hit-rate gauge (svc.cache_hit_rate) reflects the current epoch only and
// is not polluted by traffic against snapshots that no longer exist.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "count/top_pairs.hpp"
#include "svc/request.hpp"
#include "util/common.hpp"
#include "util/sync.hpp"

namespace bfc::svc {

struct CacheKey {
  std::uint64_t epoch = 0;
  QueryKind kind = QueryKind::kGlobalCount;
  std::int64_t a = 0;  // vertex / edge endpoint / k, kind-dependent
  std::int64_t b = 0;  // second edge endpoint; 0 otherwise
  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  [[nodiscard]] std::size_t operator()(const CacheKey& k) const noexcept {
    // splitmix64-style mixing of the four fields.
    auto mix = [](std::uint64_t x) noexcept {
      x += 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    };
    std::uint64_t h = mix(k.epoch);
    h = mix(h ^ static_cast<std::uint64_t>(k.kind));
    h = mix(h ^ static_cast<std::uint64_t>(k.a));
    h = mix(h ^ static_cast<std::uint64_t>(k.b));
    return static_cast<std::size_t>(h);
  }
};

/// Scalar answers (count / tip / support) or a shared top-k pair list.
using CacheValue =
    std::variant<count_t,
                 std::shared_ptr<const std::vector<count::VertexPair>>>;

class ResultCache {
 public:
  /// `capacity` = maximum number of entries (>= 1).
  explicit ResultCache(std::size_t capacity);

  /// Returns the value and refreshes its recency, or nullopt on miss.
  [[nodiscard]] std::optional<CacheValue> get(const CacheKey& key);

  /// Inserts or refreshes; evicts the least-recently-used entry when full.
  void put(const CacheKey& key, CacheValue value);

  /// Drops every entry and resets the generation-scoped hit/miss stats.
  void invalidate_all();

  /// Drops entries with key.epoch < min_epoch (the publish path passes
  /// new_epoch - 1, retaining one trailing epoch as the stale-answer tier)
  /// and resets the generation-scoped hit/miss stats.
  void invalidate_older_than(std::uint64_t min_epoch);

  /// Hits / misses since the last invalidation (not since construction).
  [[nodiscard]] std::int64_t hits() const;
  [[nodiscard]] std::int64_t misses() const;
  /// hits / (hits + misses) of the current generation; 0 when untouched.
  [[nodiscard]] double hit_rate() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  using Entry = std::pair<CacheKey, CacheValue>;

  std::size_t capacity_;
  mutable Mutex mu_{"svc.result_cache"};
  // front = most recently used
  std::list<Entry> lru_ BFC_GUARDED_BY(mu_);
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> map_
      BFC_GUARDED_BY(mu_);
  // Generation-scoped; reset on invalidation.
  std::int64_t hits_ BFC_GUARDED_BY(mu_) = 0;
  std::int64_t misses_ BFC_GUARDED_BY(mu_) = 0;
};

}  // namespace bfc::svc
