// Bounded LRU cache over query results, keyed by (epoch, kind, argument,
// tier). Because the key includes the epoch and snapshots are immutable, a
// cached entry can never serve a *wrong* answer — entries for old epochs
// are merely old. The service exploits that for graceful degradation: on
// publish it calls invalidate_older_than(epoch - 1), keeping exactly the
// just-retired epoch's entries as the stale-answer tier of the degradation
// ladder while dropping everything older.
//
// Tiers are independent invalidation domains sharing one LRU budget. The
// unsharded service uses a single tier (tier 0, the default — the key
// layout and every legacy call site are unchanged); the sharded service
// gives each shard its own tier (keyed by that shard's epoch) plus a
// view-composite tier (keyed by view signature), so a publish on shard k
// invalidates ONLY shard k's entries and stats, leaving the other shards'
// hit streaks untouched.
//
// Counters: cumulative hits/misses go to the obs registry (svc.cache_hits /
// svc.cache_misses). The cache additionally keeps *generation-scoped*
// hit/miss counts PER TIER that reset on that tier's invalidation, so the
// post-publish hit-rate gauge (svc.cache_hit_rate, and the per-shard
// svc.shard.<k>.cache_hit_rate gauges the service maintains) reflects the
// current epoch of the invalidated tier only — publishes elsewhere no
// longer zero an unrelated shard's rate.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "count/top_pairs.hpp"
#include "svc/request.hpp"
#include "util/common.hpp"
#include "util/sync.hpp"

namespace bfc::svc {

struct CacheKey {
  std::uint64_t epoch = 0;  // per-shard epoch, or view signature (tier S)
  QueryKind kind = QueryKind::kGlobalCount;
  std::int64_t a = 0;  // vertex / edge endpoint / k, kind-dependent
  std::int64_t b = 0;  // second edge endpoint; 0 otherwise
  // Last and defaulted so every pre-tier aggregate init stays valid.
  std::int32_t tier = 0;
  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  [[nodiscard]] std::size_t operator()(const CacheKey& k) const noexcept {
    // splitmix64-style mixing of the five fields.
    auto mix = [](std::uint64_t x) noexcept {
      x += 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    };
    std::uint64_t h = mix(k.epoch);
    h = mix(h ^ static_cast<std::uint64_t>(k.kind));
    h = mix(h ^ static_cast<std::uint64_t>(k.a));
    h = mix(h ^ static_cast<std::uint64_t>(k.b));
    h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                    k.tier)));
    return static_cast<std::size_t>(h);
  }
};

/// Scalar answers (count / tip / support) or a shared top-k pair list.
using CacheValue =
    std::variant<count_t,
                 std::shared_ptr<const std::vector<count::VertexPair>>>;

class ResultCache {
 public:
  /// `capacity` = maximum number of entries (>= 1), shared across all
  /// `tiers` (>= 1) invalidation domains.
  explicit ResultCache(std::size_t capacity, int tiers = 1);

  /// Returns the value and refreshes its recency, or nullopt on miss.
  [[nodiscard]] std::optional<CacheValue> get(const CacheKey& key);

  /// Inserts or refreshes; evicts the least-recently-used entry when full.
  void put(const CacheKey& key, CacheValue value);

  /// Drops every entry and resets every tier's generation-scoped stats.
  void invalidate_all();

  /// Drops entries with key.epoch < min_epoch across ALL tiers (the
  /// unsharded publish path passes new_epoch - 1, retaining one trailing
  /// epoch as the stale-answer tier) and resets every tier's
  /// generation-scoped hit/miss stats.
  void invalidate_older_than(std::uint64_t min_epoch);

  /// Shard-local publish: drops only `tier`'s entries older than min_epoch
  /// and resets only `tier`'s generation stats. Other tiers keep both
  /// their entries and their hit/miss streaks.
  void invalidate_tier_older_than(int tier, std::uint64_t min_epoch);

  /// View-composite tier maintenance: drops `tier`'s entries whose epoch
  /// field (a view signature — not ordered, so "older than" cannot apply)
  /// is NOT in `keep_epochs`, and resets only `tier`'s generation stats.
  void invalidate_tier_keep(int tier,
                            std::span<const std::uint64_t> keep_epochs);

  /// Hits / misses since the last invalidation that touched each tier,
  /// summed over tiers (the pre-tier aggregate surface, unchanged).
  [[nodiscard]] std::int64_t hits() const;
  [[nodiscard]] std::int64_t misses() const;
  /// hits / (hits + misses) of the current generations; 0 when untouched.
  [[nodiscard]] double hit_rate() const;

  /// Same, scoped to one tier's current generation.
  [[nodiscard]] std::int64_t hits(int tier) const;
  [[nodiscard]] std::int64_t misses(int tier) const;
  [[nodiscard]] double hit_rate(int tier) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] int tiers() const noexcept {
    return static_cast<int>(hits_.size());
  }

 private:
  using Entry = std::pair<CacheKey, CacheValue>;

  /// Clamps an out-of-range key tier into [0, tiers) — a defensive identity
  /// map in practice; the service constructs keys from its own tier count.
  [[nodiscard]] std::size_t tier_index(int tier) const noexcept {
    const auto t = static_cast<std::size_t>(tier < 0 ? 0 : tier);
    return t < hits_.size() ? t : hits_.size() - 1;
  }
  [[nodiscard]] double hit_rate_locked() const BFC_REQUIRES(mu_);

  std::size_t capacity_;
  mutable Mutex mu_{"svc.result_cache"};
  // front = most recently used
  std::list<Entry> lru_ BFC_GUARDED_BY(mu_);
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> map_
      BFC_GUARDED_BY(mu_);
  // Generation-scoped per tier; a tier's stats reset only when THAT tier
  // is invalidated.
  std::vector<std::int64_t> hits_ BFC_GUARDED_BY(mu_);
  std::vector<std::int64_t> misses_ BFC_GUARDED_BY(mu_);
};

}  // namespace bfc::svc
