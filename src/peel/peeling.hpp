// §IV of the paper: k-tip and k-wing subgraph extraction via the
// linear-algebra mask iteration (Eqs. 19-22 for tips, 25-27 for wings).
// Vertex and edge ids are stable: peeling zeroes out rows/entries of the
// biadjacency pattern instead of compacting it.
#pragma once

#include "graph/bipartite_graph.hpp"
#include "util/common.hpp"

namespace bfc::peel {

/// Which vertex set tip peeling removes vertices from. The paper's Eq. (19)
/// computes butterflies per V1 vertex; kV2 applies the same formulation to
/// Aᵀ.
enum class Side { kV1, kV2 };

/// How each round's per-vertex butterfly vector s (Eq. 19) is evaluated.
enum class TipAlgorithm {
  /// Full per-vertex recomputation each round — the literal Eqs. 19-22.
  kRecompute,
  /// The Fig. 8 "look-ahead" variant: one traversal in which the exposed
  /// row's count is completed from the A2 partition while the trailing
  /// rows' counts are partially updated (each pair contributes C(t, 2) to
  /// both endpoints), halving the wedge expansion work per round.
  kLookahead,
};

struct TipPeelResult {
  graph::BipartiteGraph subgraph;  // same shape as the input, edges removed
  std::vector<std::uint8_t> kept;  // 0/1 per vertex of the peeled side
  int rounds = 0;                  // mask iterations until the fixpoint
  vidx_t removed_vertices = 0;
};

/// Maximal subgraph in which every kept vertex of `side` participates in at
/// least k butterflies: iterate s = per-vertex butterflies (Eq. 19),
/// m = (s ≥ k) (Eq. 20), A ← A ∘ M (Eqs. 21-22) until no vertex is removed.
[[nodiscard]] TipPeelResult k_tip(const graph::BipartiteGraph& g, count_t k,
                                  Side side = Side::kV1,
                                  TipAlgorithm algorithm = TipAlgorithm::kRecompute);

struct WingPeelResult {
  graph::BipartiteGraph subgraph;
  std::vector<std::uint8_t> kept_edges;  // 0/1 per ORIGINAL edge, CSR order
  int rounds = 0;
  offset_t removed_edges = 0;
};

/// Maximal subgraph in which every kept edge lies on at least k
/// butterflies: iterate S_w (Eq. 25), M = (S_w ≥ k) (Eq. 26),
/// A ← A ∘ M (Eq. 27) until no edge is removed.
[[nodiscard]] WingPeelResult k_wing(const graph::BipartiteGraph& g, count_t k);

}  // namespace bfc::peel
