#include "count/local_counts.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "peel/peeling.hpp"
#include "sparse/ops.hpp"

namespace bfc::peel {

WingPeelResult k_wing(const graph::BipartiteGraph& g, count_t k) {
  BFC_TRACE_SCOPE("peel.k_wing");
  require(k >= 0, "k_wing: negative k");

  WingPeelResult result;
  result.subgraph = g;
  result.kept_edges.assign(static_cast<std::size_t>(g.edge_count()), 1);

  // Edge ids refer to the ORIGINAL CSR order; each round maps the current
  // (compacted) pattern's entries back through the surviving-id list.
  std::vector<offset_t> current_to_original(
      static_cast<std::size_t>(g.edge_count()));
  for (std::size_t e = 0; e < current_to_original.size(); ++e)
    current_to_original[e] = static_cast<offset_t>(e);

  while (result.subgraph.edge_count() > 0) {
    ++result.rounds;
    // S_w = per-edge support of the current subgraph (Eq. 25).
    const std::vector<count_t> support =
        count::support_per_edge(result.subgraph);

    // M = (S_w >= k) (Eq. 26).
    std::vector<std::uint8_t> keep(support.size());
    bool changed = false;
    for (std::size_t e = 0; e < support.size(); ++e) {
      keep[e] = support[e] >= k ? 1 : 0;
      if (!keep[e]) {
        result.kept_edges[static_cast<std::size_t>(current_to_original[e])] = 0;
        ++result.removed_edges;
        changed = true;
      }
    }
    if (!changed) break;

    // A ← A ∘ M (Eq. 27) and shrink the id map alongside.
    std::vector<offset_t> next_map;
    next_map.reserve(support.size());
    for (std::size_t e = 0; e < support.size(); ++e)
      if (keep[e]) next_map.push_back(current_to_original[e]);
    current_to_original = std::move(next_map);
    result.subgraph = graph::BipartiteGraph(
        sparse::mask_entries(result.subgraph.csr(), keep));
  }
  BFC_COUNT_ADD("peel.rounds", result.rounds);
  BFC_COUNT_ADD("peel.edges_removed", result.removed_edges);
  return result;
}

}  // namespace bfc::peel
