// A family of per-edge support algorithms, derived the same way §III
// derives the counting family (the paper's §IV closes with "Following
// similar steps as shown in Section III, algorithms for peeling k-wings can
// be derived"). The FLAME traversal exposes one line a₁ at a time; for each
// peer line c with t = |a₁ ∩ c| shared vertices, the C(t, 2) butterflies
// between the pair contribute (t − 1) units of support to each of the 2t
// edges incident to a shared vertex. Traversing all pairs once therefore
// accumulates exactly the Eq. (25) support matrix, and the choice of
// direction and peer side yields four variants per partition family — the
// wing analogue of invariants 1-8.
#pragma once

#include "graph/bipartite_graph.hpp"
#include "la/invariants.hpp"
#include "util/common.hpp"

namespace bfc::peel {

/// Per-edge support in CSR order of g.csr(), computed by the partitioned
/// traversal named by `inv` (all eight produce identical results; column-
/// family invariants traverse V2 and charge edges through their V2
/// endpoint, row-family ones the mirror image).
[[nodiscard]] std::vector<count_t> support_family(const graph::BipartiteGraph& g,
                                                  la::Invariant inv);

}  // namespace bfc::peel
