#include "peel/wing_family.hpp"

#include "la/partition.hpp"
#include "sparse/ops.hpp"

namespace bfc::peel {
namespace {

/// Row-family support kernel: traverses rows of g.csr() as pivots. For a
/// pivot row p and peer row c sharing t ≥ 2 columns, every shared column v
/// identifies edges (p, v) and (c, v) that lie on (t − 1) butterflies of
/// this pair. Two passes per pivot: accumulate t_c, then re-expand charging
/// edges. Over the whole traversal each unordered row pair is visited once,
/// so the accumulated values equal Eq. (25).
std::vector<count_t> support_rows(const graph::BipartiteGraph& g,
                                  la::Direction direction,
                                  la::PeerSide peer) {
  const sparse::CsrPattern& a = g.csr();
  const sparse::CsrPattern& at = g.csc();
  const std::vector<offset_t> csc_eid = sparse::transpose_entry_ids(a, at);

  std::vector<count_t> support(static_cast<std::size_t>(a.nnz()), 0);
  std::vector<count_t> acc(static_cast<std::size_t>(a.rows()), 0);
  std::vector<vidx_t> touched;

  for (const la::Step& step :
       la::traversal_steps(a.rows(), direction, peer)) {
    const vidx_t p = step.pivot;
    const auto pivot_cols = a.row(p);
    if (pivot_cols.size() < 2) continue;

    // Pass 1: t_c for every peer row c sharing a column with p.
    touched.clear();
    for (const vidx_t v : pivot_cols) {
      for (const vidx_t c : at.row(v)) {
        if (c < step.peer_lo || c >= step.peer_hi) continue;
        if (acc[static_cast<std::size_t>(c)] == 0) touched.push_back(c);
        ++acc[static_cast<std::size_t>(c)];
      }
    }

    // Pass 2: charge the (t − 1) butterflies of each (pivot, peer, shared
    // column) triple onto both incident edges.
    const offset_t p_base = a.row_ptr()[static_cast<std::size_t>(p)];
    for (std::size_t pos = 0; pos < pivot_cols.size(); ++pos) {
      const vidx_t v = pivot_cols[pos];
      const offset_t eid_pv = p_base + static_cast<offset_t>(pos);
      const offset_t v_base = at.row_ptr()[static_cast<std::size_t>(v)];
      const auto v_rows = at.row(v);
      for (std::size_t k = 0; k < v_rows.size(); ++k) {
        const vidx_t c = v_rows[k];
        if (c < step.peer_lo || c >= step.peer_hi) continue;
        const count_t t = acc[static_cast<std::size_t>(c)];
        if (t < 2) continue;
        support[static_cast<std::size_t>(eid_pv)] += t - 1;
        support[static_cast<std::size_t>(
            csc_eid[static_cast<std::size_t>(v_base) + k])] += t - 1;
      }
    }

    for (const vidx_t c : touched) acc[static_cast<std::size_t>(c)] = 0;
  }
  return support;
}

}  // namespace

std::vector<count_t> support_family(const graph::BipartiteGraph& g,
                                    la::Invariant inv) {
  const la::InvariantTraits t = la::traits(inv);
  if (t.family == la::Family::kRows)
    return support_rows(g, t.direction, t.peer);

  // Column family == row family on the swapped graph; the swapped CSR edge
  // order is this graph's CSC order, so map the results back through the
  // transpose-entry ids.
  const graph::BipartiteGraph swapped = g.swapped_sides();
  const std::vector<count_t> by_csc =
      support_rows(swapped, t.direction, t.peer);
  const std::vector<offset_t> csc_eid =
      sparse::transpose_entry_ids(g.csr(), g.csc());
  std::vector<count_t> support(by_csc.size(), 0);
  for (std::size_t k = 0; k < by_csc.size(); ++k)
    support[static_cast<std::size_t>(csc_eid[k])] = by_csc[k];
  return support;
}

}  // namespace bfc::peel
