#include "peel/decompose.hpp"

#include "sparse/ops.hpp"

namespace bfc::peel {

graph::BipartiteGraph tip_subgraph(const graph::BipartiteGraph& g,
                                   const TipDecomposition& d, count_t k,
                                   Side side) {
  const auto dim = static_cast<std::size_t>(side == Side::kV1 ? g.n1() : g.n2());
  require(d.tip_number.size() == dim,
          "tip_subgraph: decomposition does not match graph/side");
  std::vector<std::uint8_t> keep(dim);
  for (std::size_t i = 0; i < dim; ++i)
    keep[i] = d.tip_number[i] >= k ? 1 : 0;
  const sparse::CsrPattern masked = side == Side::kV1
                                        ? sparse::mask_rows(g.csr(), keep)
                                        : sparse::mask_cols(g.csr(), keep);
  return graph::BipartiteGraph(masked);
}

graph::BipartiteGraph wing_subgraph(const graph::BipartiteGraph& g,
                                    const WingDecomposition& d, count_t k) {
  require(d.wing_number.size() == static_cast<std::size_t>(g.edge_count()),
          "wing_subgraph: decomposition does not match graph");
  std::vector<std::uint8_t> keep(d.wing_number.size());
  for (std::size_t e = 0; e < keep.size(); ++e)
    keep[e] = d.wing_number[e] >= k ? 1 : 0;
  return graph::BipartiteGraph(sparse::mask_entries(g.csr(), keep));
}

}  // namespace bfc::peel
