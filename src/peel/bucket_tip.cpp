#include <queue>

#include "count/local_counts.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "peel/decompose.hpp"

namespace bfc::peel {

TipDecomposition tip_decomposition(const graph::BipartiteGraph& g, Side side) {
  BFC_TRACE_SCOPE("peel.tip_decomposition");
  // `lines` rows enumerate the peeled side; `lines_t` the opposite side.
  const sparse::CsrPattern& lines = side == Side::kV1 ? g.csr() : g.csc();
  const sparse::CsrPattern& lines_t = side == Side::kV1 ? g.csc() : g.csr();
  const vidx_t n = lines.rows();

  std::vector<count_t> b = side == Side::kV1 ? count::butterflies_per_v1(g)
                                             : count::butterflies_per_v2(g);

  TipDecomposition d;
  d.tip_number.assign(static_cast<std::size_t>(n), 0);

  using Entry = std::pair<count_t, vidx_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (vidx_t u = 0; u < n; ++u)
    heap.emplace(b[static_cast<std::size_t>(u)], u);

  std::vector<std::uint8_t> removed(static_cast<std::size_t>(n), 0);
  std::vector<count_t> acc(static_cast<std::size_t>(n), 0);
  std::vector<vidx_t> touched;
  count_t running_k = 0;
  // Bucket moves = re-pushed heap entries (the lazy-invalidation analogue of
  // moving a vertex between peel buckets); decrements = butterflies removed
  // from surviving peers' counts.
  count_t obs_moves = 0, obs_decrements = 0;

  while (!heap.empty()) {
    const auto [val, u] = heap.top();
    heap.pop();
    const auto ui = static_cast<std::size_t>(u);
    // Lazy invalidation: stale heap entries carry an outdated count.
    if (removed[ui] || val != b[ui]) continue;

    running_k = std::max(running_k, b[ui]);
    d.tip_number[ui] = running_k;
    d.max_tip = std::max(d.max_tip, running_k);
    removed[ui] = 1;

    // Removing u deletes, for every surviving peer j, exactly the
    // butterflies whose two peeled-side vertices are {u, j}: C(w_uj, 2)
    // where w_uj counts their common neighbours.
    touched.clear();
    for (const vidx_t k : lines.row(u)) {
      for (const vidx_t j : lines_t.row(k)) {
        const auto ji = static_cast<std::size_t>(j);
        if (j == u || removed[ji]) continue;
        if (acc[ji] == 0) touched.push_back(j);
        ++acc[ji];
      }
    }
    for (const vidx_t j : touched) {
      const auto ji = static_cast<std::size_t>(j);
      if constexpr (obs::kMetricsEnabled) {
        obs_decrements += choose2(acc[ji]);
        ++obs_moves;
      }
      b[ji] -= choose2(acc[ji]);
      acc[ji] = 0;
      heap.emplace(b[ji], j);
    }
  }
  if constexpr (obs::kMetricsEnabled) {
    BFC_COUNT_ADD("peel.vertices_peeled", n);
    BFC_COUNT_ADD("peel.bucket_moves", obs_moves);
    BFC_COUNT_ADD("peel.butterflies_decremented", obs_decrements);
  }
  return d;
}

}  // namespace bfc::peel
