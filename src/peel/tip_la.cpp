#include "count/local_counts.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "peel/peeling.hpp"
#include "sparse/ops.hpp"

namespace bfc::peel {
namespace {

/// Fig. 8 look-ahead evaluation of the tip vector s: traverse the rows of
/// `lines` top to bottom; at pivot row u, expand wedges only against rows
/// j > u (the A2 partition) and add C(t_j, 2) to BOTH s_u and s_j. When row
/// u is exposed its count is already complete — the "s_T fully computed,
/// s_B partially updated" state of the paper's KTIP_UNB_VAR1 — and each
/// unordered pair is expanded exactly once.
std::vector<count_t> tip_vector_lookahead(const sparse::CsrPattern& lines,
                                          const sparse::CsrPattern& lines_t) {
  const vidx_t n = lines.rows();
  std::vector<count_t> s(static_cast<std::size_t>(n), 0);
  std::vector<count_t> acc(static_cast<std::size_t>(n), 0);
  std::vector<vidx_t> touched;
  for (vidx_t u = 0; u < n; ++u) {
    touched.clear();
    for (const vidx_t k : lines.row(u)) {
      for (const vidx_t j : lines_t.row(k)) {
        if (j <= u) continue;  // A2 partition only
        if (acc[static_cast<std::size_t>(j)] == 0) touched.push_back(j);
        ++acc[static_cast<std::size_t>(j)];
      }
    }
    for (const vidx_t j : touched) {
      const count_t pair_butterflies = choose2(acc[static_cast<std::size_t>(j)]);
      s[static_cast<std::size_t>(u)] += pair_butterflies;
      s[static_cast<std::size_t>(j)] += pair_butterflies;
      acc[static_cast<std::size_t>(j)] = 0;
    }
  }
  return s;
}

std::vector<count_t> tip_vector(const graph::BipartiteGraph& g, Side side,
                                TipAlgorithm algorithm) {
  if (algorithm == TipAlgorithm::kRecompute) {
    return side == Side::kV1 ? count::butterflies_per_v1(g)
                             : count::butterflies_per_v2(g);
  }
  return side == Side::kV1 ? tip_vector_lookahead(g.csr(), g.csc())
                           : tip_vector_lookahead(g.csc(), g.csr());
}

}  // namespace

TipPeelResult k_tip(const graph::BipartiteGraph& g, count_t k, Side side,
                    TipAlgorithm algorithm) {
  BFC_TRACE_SCOPE("peel.k_tip");
  require(k >= 0, "k_tip: negative k");
  const vidx_t peel_dim = side == Side::kV1 ? g.n1() : g.n2();

  TipPeelResult result;
  result.subgraph = g;
  result.kept.assign(static_cast<std::size_t>(peel_dim), 1);

  while (true) {
    ++result.rounds;
    // s = per-vertex butterfly vector of the current subgraph (Eq. 19).
    const std::vector<count_t> s = tip_vector(result.subgraph, side, algorithm);

    // m = (s >= k) over still-kept vertices (Eq. 20). A vertex with no
    // edges sits in 0 butterflies and is peeled in round one for any k > 0.
    bool changed = false;
    for (std::size_t i = 0; i < result.kept.size(); ++i) {
      if (result.kept[i] && s[i] < k) {
        result.kept[i] = 0;
        ++result.removed_vertices;
        changed = true;
      }
    }
    if (!changed) break;

    // A ← A ∘ M (Eqs. 21-22): drop the peeled vertices' edges. V2 vertices
    // left neighbourless become isolated implicitly, exactly what the
    // mᵀA mask accomplishes in the paper's formulation.
    const sparse::CsrPattern masked =
        side == Side::kV1 ? sparse::mask_rows(result.subgraph.csr(), result.kept)
                          : sparse::mask_cols(result.subgraph.csr(), result.kept);
    result.subgraph = graph::BipartiteGraph(masked);
  }
  BFC_COUNT_ADD("peel.rounds", result.rounds);
  BFC_COUNT_ADD("peel.vertices_removed", result.removed_vertices);
  return result;
}

}  // namespace bfc::peel
