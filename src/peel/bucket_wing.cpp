#include <algorithm>
#include <queue>

#include "count/local_counts.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "peel/decompose.hpp"

#include "sparse/ops.hpp"

namespace bfc::peel {

WingDecomposition wing_decomposition(const graph::BipartiteGraph& g) {
  BFC_TRACE_SCOPE("peel.wing_decomposition");
  const sparse::CsrPattern& a = g.csr();
  const sparse::CsrPattern& at = g.csc();
  const auto nnz = static_cast<std::size_t>(a.nnz());
  const std::vector<offset_t> csc_eid = sparse::transpose_entry_ids(a, at);

  std::vector<count_t> support = count::support_per_edge(g);
  WingDecomposition d;
  d.wing_number.assign(nnz, 0);

  using Entry = std::pair<count_t, offset_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t e = 0; e < nnz; ++e)
    heap.emplace(support[e], static_cast<offset_t>(e));

  std::vector<std::uint8_t> removed(nnz, 0);

  // Endpoints of each CSR edge id.
  std::vector<vidx_t> edge_u(nnz), edge_v(nnz);
  {
    offset_t k = 0;
    for (vidx_t u = 0; u < a.rows(); ++u)
      for (const vidx_t v : a.row(u)) {
        edge_u[static_cast<std::size_t>(k)] = u;
        edge_v[static_cast<std::size_t>(k)] = v;
        ++k;
      }
  }

  count_t running_k = 0;
  count_t obs_moves = 0;
  auto decrement = [&](offset_t e) {
    const auto ei = static_cast<std::size_t>(e);
    --support[ei];
    heap.emplace(support[ei], e);
    if constexpr (obs::kMetricsEnabled) ++obs_moves;
  };

  while (!heap.empty()) {
    const auto [val, e] = heap.top();
    heap.pop();
    const auto ei = static_cast<std::size_t>(e);
    if (removed[ei] || val != support[ei]) continue;

    running_k = std::max(running_k, support[ei]);
    d.wing_number[ei] = running_k;
    d.max_wing = std::max(d.max_wing, running_k);
    removed[ei] = 1;

    const vidx_t u = edge_u[ei];
    const vidx_t v = edge_v[ei];

    // Every surviving butterfly through (u, v) has the shape
    // (u, v, w, x): w ∈ N(v)\{u}, x ∈ N(u)∩N(w)\{v}, with edges (u,x),
    // (w,v), (w,x) still alive. Each loses one unit of support.
    const auto v_nbrs = at.row(v);
    const auto v_base = at.row_ptr()[static_cast<std::size_t>(v)];
    for (std::size_t wi = 0; wi < v_nbrs.size(); ++wi) {
      const vidx_t w = v_nbrs[wi];
      if (w == u) continue;
      const offset_t e_wv =
          csc_eid[static_cast<std::size_t>(v_base) + wi];
      if (removed[static_cast<std::size_t>(e_wv)]) continue;

      // Sorted merge of N(u) and N(w), tracking CSR edge ids on both sides.
      const auto u_nbrs = a.row(u);
      const auto w_nbrs = a.row(w);
      const offset_t u_base = a.row_ptr()[static_cast<std::size_t>(u)];
      const offset_t w_base = a.row_ptr()[static_cast<std::size_t>(w)];
      std::size_t iu = 0, iw = 0;
      while (iu < u_nbrs.size() && iw < w_nbrs.size()) {
        if (u_nbrs[iu] < w_nbrs[iw]) {
          ++iu;
        } else if (w_nbrs[iw] < u_nbrs[iu]) {
          ++iw;
        } else {
          const vidx_t x = u_nbrs[iu];
          const offset_t e_ux = u_base + static_cast<offset_t>(iu);
          const offset_t e_wx = w_base + static_cast<offset_t>(iw);
          ++iu;
          ++iw;
          if (x == v) continue;
          if (removed[static_cast<std::size_t>(e_ux)] ||
              removed[static_cast<std::size_t>(e_wx)])
            continue;
          decrement(e_ux);
          decrement(e_wv);
          decrement(e_wx);
        }
      }
    }
  }
  if constexpr (obs::kMetricsEnabled) {
    BFC_COUNT_ADD("peel.edges_peeled", static_cast<count_t>(nnz));
    BFC_COUNT_ADD("peel.bucket_moves", obs_moves);
    // Each removed butterfly decrements three surviving edges' supports.
    BFC_COUNT_ADD("peel.butterflies_decremented", obs_moves / 3);
  }
  return d;
}

}  // namespace bfc::peel
