// Full tip / wing decompositions (Sariyüce & Pinar [11]): the tip number
// θ(u) is the largest k such that vertex u survives in the k-tip, and the
// wing number ψ(e) the largest k such that edge e survives in the k-wing.
// Computed with bottom-up bucket peeling, these give every k-tip/k-wing at
// once and cross-validate the paper's mask-iteration formulation.
#pragma once

#include "graph/bipartite_graph.hpp"
#include "peel/peeling.hpp"
#include "util/common.hpp"

namespace bfc::peel {

struct TipDecomposition {
  std::vector<count_t> tip_number;  // per vertex of the peeled side
  count_t max_tip = 0;              // largest θ present
};

/// Peels vertices of `side` in nondecreasing order of their remaining
/// butterfly count (min-heap with lazy invalidation).
[[nodiscard]] TipDecomposition tip_decomposition(const graph::BipartiteGraph& g,
                                                 Side side = Side::kV1);

/// Subgraph induced by vertices with θ >= k — must equal k_tip(g, k, side)
/// up to isolated vertices.
[[nodiscard]] graph::BipartiteGraph tip_subgraph(const graph::BipartiteGraph& g,
                                                 const TipDecomposition& d,
                                                 count_t k, Side side);

struct WingDecomposition {
  std::vector<count_t> wing_number;  // per edge in CSR order of g.csr()
  count_t max_wing = 0;
};

/// Peels edges in nondecreasing order of remaining butterfly support.
[[nodiscard]] WingDecomposition wing_decomposition(
    const graph::BipartiteGraph& g);

/// Subgraph of edges with ψ >= k — must equal k_wing(g, k).
[[nodiscard]] graph::BipartiteGraph wing_subgraph(
    const graph::BipartiteGraph& g, const WingDecomposition& d, count_t k);

}  // namespace bfc::peel
