#include "gb/peeling.hpp"

#include "sparse/ops.hpp"

namespace bfc::gb {

MaskIterationResult k_tip_spec(const graph::BipartiteGraph& g, count_t k) {
  require(k >= 0, "gb::k_tip_spec: negative k");
  MaskIterationResult result;
  result.subgraph = g;
  while (true) {
    ++result.rounds;
    // s = ½·DIAG(BB − B∘B − JB + B) of the current subgraph (Eq. 19).
    const std::vector<count_t> s = tip_vector(result.subgraph);
    // m = (s >= k) (Eq. 20).
    std::vector<std::uint8_t> m(s.size());
    bool all_kept = true;
    for (std::size_t i = 0; i < s.size(); ++i) {
      m[i] = s[i] >= k ? 1 : 0;
      if (!m[i] && result.subgraph.csr().row_degree(static_cast<vidx_t>(i)) > 0)
        all_kept = false;
    }
    if (all_kept) break;
    // A ← A ∘ (m·mᵀA) (Eqs. 21-22): the rank-structured mask zeroes every
    // row outside m (the mᵀA factor only re-zeroes already-empty columns).
    result.subgraph =
        graph::BipartiteGraph(sparse::mask_rows(result.subgraph.csr(), m));
  }
  return result;
}

MaskIterationResult k_wing_spec(const graph::BipartiteGraph& g, count_t k) {
  require(k >= 0, "gb::k_wing_spec: negative k");
  MaskIterationResult result;
  result.subgraph = g;
  while (result.subgraph.edge_count() > 0) {
    ++result.rounds;
    // S_w = (AAᵀA − diag(AAᵀ)·1ᵀ − 1·diag(AᵀA)ᵀ + J) ∘ A (Eq. 25), as
    // per-edge values in CSR order.
    const std::vector<count_t> support = wing_support(result.subgraph);
    // M = (S_w >= k) (Eq. 26).
    std::vector<std::uint8_t> keep(support.size());
    bool changed = false;
    for (std::size_t e = 0; e < support.size(); ++e) {
      keep[e] = support[e] >= k ? 1 : 0;
      if (!keep[e]) changed = true;
    }
    if (!changed) break;
    // A ← A ∘ M (Eq. 27).
    result.subgraph = graph::BipartiteGraph(
        sparse::mask_entries(result.subgraph.csr(), keep));
  }
  return result;
}

}  // namespace bfc::gb
