#include "chk/checked_math.hpp"
#include "gb/vector.hpp"

namespace bfc::gb {

Vector::Vector(vidx_t size, std::vector<vidx_t> indices,
               std::vector<count_t> values)
    : size_(size), indices_(std::move(indices)), values_(std::move(values)) {
  require(size >= 0, "gb::Vector: negative size");
  require(indices_.size() == values_.size(),
          "gb::Vector: index/value length mismatch");
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    require(indices_[k] >= 0 && indices_[k] < size,
            "gb::Vector: index out of range");
    if (k > 0)
      require(indices_[k - 1] < indices_[k],
              "gb::Vector: indices not sorted/unique");
    require(values_[k] != 0, "gb::Vector: explicit zero stored");
  }
}

Vector Vector::indicator(vidx_t size, std::vector<vidx_t> indices) {
  std::vector<count_t> ones(indices.size(), 1);
  return Vector(size, std::move(indices), std::move(ones));
}

Vector Vector::from_dense(const std::vector<count_t>& dense) {
  std::vector<vidx_t> idx;
  std::vector<count_t> val;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] != 0) {
      idx.push_back(static_cast<vidx_t>(i));
      val.push_back(dense[i]);
    }
  }
  return Vector(static_cast<vidx_t>(dense.size()), std::move(idx),
                std::move(val));
}

std::vector<count_t> Vector::to_dense() const {
  std::vector<count_t> dense(static_cast<std::size_t>(size_), 0);
  for (std::size_t k = 0; k < indices_.size(); ++k)
    dense[static_cast<std::size_t>(indices_[k])] = values_[k];
  return dense;
}

count_t reduce(const Vector& x) {
  count_t total = 0;
  for (const count_t v : x.values()) total = chk::checked_add(total, v);
  return total;
}

count_t dot(const Vector& x, const Vector& y) {
  require(x.size() == y.size(), "gb::dot: size mismatch");
  count_t total = 0;
  std::size_t i = 0, j = 0;
  while (i < x.nnz() && j < y.nnz()) {
    if (x.indices()[i] < y.indices()[j]) {
      ++i;
    } else if (y.indices()[j] < x.indices()[i]) {
      ++j;
    } else {
      total = chk::checked_add(
          total, chk::checked_mul(x.values()[i], y.values()[j]));
      ++i;
      ++j;
    }
  }
  return total;
}

Vector ewise_mult(const Vector& x, const Vector& y) {
  require(x.size() == y.size(), "gb::ewise_mult: size mismatch");
  std::vector<vidx_t> idx;
  std::vector<count_t> val;
  std::size_t i = 0, j = 0;
  while (i < x.nnz() && j < y.nnz()) {
    if (x.indices()[i] < y.indices()[j]) {
      ++i;
    } else if (y.indices()[j] < x.indices()[i]) {
      ++j;
    } else {
      const count_t p = x.values()[i] * y.values()[j];
      if (p != 0) {
        idx.push_back(x.indices()[i]);
        val.push_back(p);
      }
      ++i;
      ++j;
    }
  }
  return Vector(x.size(), std::move(idx), std::move(val));
}

Vector ewise_add(const Vector& x, const Vector& y) {
  require(x.size() == y.size(), "gb::ewise_add: size mismatch");
  std::vector<vidx_t> idx;
  std::vector<count_t> val;
  std::size_t i = 0, j = 0;
  auto push = [&](vidx_t index, count_t value) {
    if (value != 0) {
      idx.push_back(index);
      val.push_back(value);
    }
  };
  while (i < x.nnz() || j < y.nnz()) {
    if (j >= y.nnz() || (i < x.nnz() && x.indices()[i] < y.indices()[j])) {
      push(x.indices()[i], x.values()[i]);
      ++i;
    } else if (i >= x.nnz() || y.indices()[j] < x.indices()[i]) {
      push(y.indices()[j], y.values()[j]);
      ++j;
    } else {
      push(x.indices()[i], x.values()[i] + y.values()[j]);
      ++i;
      ++j;
    }
  }
  return Vector(x.size(), std::move(idx), std::move(val));
}

}  // namespace bfc::gb
