// Sparse integer vector for the GraphBLAS-style layer (bfc::gb): the
// "GraphBLAS" substrate lets the paper's update statements be executed
// literally as matrix/vector expressions (see gb/butterflies.hpp) instead
// of hand-specialised kernels — an executable form of the derivation.
#pragma once

#include <vector>

#include "util/common.hpp"

namespace bfc::gb {

/// Sparse vector: sorted unique indices with parallel nonzero values.
class Vector {
 public:
  Vector() = default;
  explicit Vector(vidx_t size) : size_(size) {
    require(size >= 0, "gb::Vector: negative size");
  }

  /// From parallel arrays; indices must be sorted, unique, in range, and
  /// values nonzero.
  Vector(vidx_t size, std::vector<vidx_t> indices,
         std::vector<count_t> values);

  /// Indicator vector of a sorted index set (all values 1).
  static Vector indicator(vidx_t size, std::vector<vidx_t> indices);

  /// Dense array -> sparse (zeros dropped).
  static Vector from_dense(const std::vector<count_t>& dense);

  [[nodiscard]] std::vector<count_t> to_dense() const;

  [[nodiscard]] vidx_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return indices_.size(); }

  [[nodiscard]] const std::vector<vidx_t>& indices() const noexcept {
    return indices_;
  }
  [[nodiscard]] const std::vector<count_t>& values() const noexcept {
    return values_;
  }

  bool operator==(const Vector& other) const = default;

 private:
  vidx_t size_ = 0;
  std::vector<vidx_t> indices_;
  std::vector<count_t> values_;
};

/// Σ_i x_i — the GraphBLAS reduce over the plus monoid.
[[nodiscard]] count_t reduce(const Vector& x);

/// xᵀy — dot product over the plus-times semiring.
[[nodiscard]] count_t dot(const Vector& x, const Vector& y);

/// Element-wise (Hadamard) product x ∘ y.
[[nodiscard]] Vector ewise_mult(const Vector& x, const Vector& y);

/// Element-wise sum x + y (structural union).
[[nodiscard]] Vector ewise_add(const Vector& x, const Vector& y);

/// Unary apply: f maps each stored value; zero results are dropped.
template <typename Fn>
[[nodiscard]] Vector apply(const Vector& x, Fn&& f) {
  std::vector<vidx_t> idx;
  std::vector<count_t> val;
  idx.reserve(x.nnz());
  val.reserve(x.nnz());
  for (std::size_t k = 0; k < x.nnz(); ++k) {
    const count_t r = f(x.values()[k]);
    if (r != 0) {
      idx.push_back(x.indices()[k]);
      val.push_back(r);
    }
  }
  return Vector(x.size(), std::move(idx), std::move(val));
}

}  // namespace bfc::gb
