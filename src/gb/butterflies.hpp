// The paper's derivation executed verbatim on the GraphBLAS-style layer:
// every function here is a transliteration of an equation from §II-§IV into
// gb:: primitives, with no graph-specific specialisation. These serve two
// purposes: (1) they demonstrate that the linear-algebra formulation is
// directly runnable on sparse kernels, and (2) they are mid-scale oracles —
// faster than the dense specs, independent of the optimised la:: kernels.
#pragma once

#include "gb/matrix.hpp"
#include "graph/bipartite_graph.hpp"
#include "la/invariants.hpp"
#include "util/common.hpp"

namespace bfc::gb {

/// Eq. (7) evaluated sparsely. Γ(BBᵀ) is computed as Σ(B∘B) using the very
/// Hadamard/trace identity (Eq. 3) the paper's derivation rests on, so the
/// whole spec costs O(nnz(B)) after one Gram product.
[[nodiscard]] count_t butterflies_spec(const graph::BipartiteGraph& g);

/// Eq. (6): the number of wedges with distinct endpoints in V1.
[[nodiscard]] count_t wedges_spec(const graph::BipartiteGraph& g);

/// The Fig. 6/7 loop algorithms with each update statement evaluated as a
/// matrix-vector expression: a₁ = extract_row, t = P·a₁ (mxv_row_range over
/// the FLAME peer partition), update = ½(tᵀt − Σt). One function covers all
/// eight invariants through the trait table.
[[nodiscard]] count_t butterflies_loop(const graph::BipartiteGraph& g,
                                       la::Invariant inv);

/// Eq. (19) literally: s = ½·DIAG(BB − B∘B − JB + B) (see dense/spec.cpp
/// for the ¼→½ factor correction). Builds the dense J product, so this is
/// a spec-scale oracle, not a production path.
[[nodiscard]] std::vector<count_t> tip_vector(const graph::BipartiteGraph& g);

/// Eq. (25) literally: S_w = (AAᵀA − diag(AAᵀ)·1ᵀ − 1·diag(AᵀA)ᵀ + J) ∘ A,
/// returned as per-edge values in CSR order of g.csr(). The trailing ∘A
/// masks every dense term onto the edge set, so this stays sparse.
[[nodiscard]] std::vector<count_t> wing_support(const graph::BipartiteGraph& g);

}  // namespace bfc::gb
