// §IV's peeling iterations executed verbatim on the GraphBLAS layer:
// masks are vectors/matrices, the update A ← A ∘ M is an ewise multiply,
// and the per-round quantities come from gb::tip_vector / gb::wing_support.
// These are specification-fidelity implementations (each round re-evaluates
// the full equation, like the paper's Eqs. 19-22 / 25-27 loop); the
// production paths live in peel/.
#pragma once

#include "gb/butterflies.hpp"
#include "graph/bipartite_graph.hpp"
#include "util/common.hpp"

namespace bfc::gb {

struct MaskIterationResult {
  graph::BipartiteGraph subgraph;
  int rounds = 0;
};

/// Eqs. (19)-(22) on the gb layer: s = tip_vector, m = (s ≥ k),
/// A ← A ∘ (m·mᵀA) — realised as a row mask on the pattern — to fixpoint.
[[nodiscard]] MaskIterationResult k_tip_spec(const graph::BipartiteGraph& g,
                                             count_t k);

/// Eqs. (25)-(27) on the gb layer: S_w = wing_support, M = (S_w ≥ k),
/// A ← A ∘ M, to fixpoint.
[[nodiscard]] MaskIterationResult k_wing_spec(const graph::BipartiteGraph& g,
                                              count_t k);

}  // namespace bfc::gb
