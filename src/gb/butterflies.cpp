#include "gb/butterflies.hpp"
#include "chk/checked_math.hpp"

namespace bfc::gb {
namespace {

/// Gram matrix over the partitioned side's complement: B = L·Lᵀ where the
/// rows of L enumerate the counting side.
sparse::CsrCounts gram_of(const sparse::CsrPattern& rows_pattern,
                          const sparse::CsrPattern& rows_pattern_t) {
  return mxm(from_pattern(rows_pattern), from_pattern(rows_pattern_t));
}

}  // namespace

count_t butterflies_spec(const graph::BipartiteGraph& g) {
  // B = AAᵀ.
  const sparse::CsrCounts b = gram_of(g.csr(), g.csc());
  // Γ(BBᵀ) = Σ_ij (B∘B)_ij by the Eq. (3) identity.
  const count_t t_bb = reduce(ewise_mult(b, b));
  // Γ(B∘B) = Σ_i B_ii².
  const Vector d = diag(b);
  const count_t t_bhb = dot(d, d);
  // Γ(J·Bᵀ) = Σ_ij B_ij (J is all-ones).
  const count_t t_jb = reduce(b);
  const count_t t_b = trace(b);
  const count_t numerator = t_bb - t_bhb - t_jb + t_b;
  require(numerator % 4 == 0, "gb spec: numerator not divisible by 4");
  return numerator / 4;
}

count_t wedges_spec(const graph::BipartiteGraph& g) {
  const sparse::CsrCounts b = gram_of(g.csr(), g.csc());
  const count_t numerator = reduce(b) - trace(b);
  require(numerator % 2 == 0, "gb wedges: numerator not divisible by 2");
  return numerator / 2;
}

count_t butterflies_loop(const graph::BipartiteGraph& g, la::Invariant inv) {
  const la::InvariantTraits t = la::traits(inv);
  // Lines of the partitioned dimension as an integer matrix L; the update
  // needs t = P·a₁ where P is the A0 or A2 block of L.
  const sparse::CsrCounts lines = from_pattern(
      t.family == la::Family::kColumns ? g.csc() : g.csr());
  const vidx_t n = lines.rows;

  count_t total = 0;
  for (vidx_t step = 0; step < n; ++step) {
    const vidx_t pivot =
        t.direction == la::Direction::kForward ? step : n - 1 - step;
    const vidx_t lo = t.peer == la::PeerSide::kBefore ? 0 : pivot + 1;
    const vidx_t hi = t.peer == la::PeerSide::kBefore ? pivot : n;

    // Fig. 6/7 update: Ξ += ½·a₁ᵀPPᵀa₁ − ½·Γ(a₁a₁ᵀ∘PPᵀ)
    //                     = ½·(tᵀt − Σt)  with  t = P·a₁.
    const Vector a1 = extract_row(lines, pivot);
    const Vector wedge_counts = mxv_row_range(lines, lo, hi, a1);
    const count_t update =
        dot(wedge_counts, wedge_counts) - reduce(wedge_counts);
    require(update % 2 == 0, "gb loop: odd update numerator");
    total = chk::checked_add(total, update / 2);
  }
  return total;
}

std::vector<count_t> tip_vector(const graph::BipartiteGraph& g) {
  const sparse::CsrCounts b = gram_of(g.csr(), g.csc());
  const sparse::CsrCounts bb = mxm(b, b);
  const sparse::CsrCounts bhb = ewise_mult(b, b);
  // JB's diagonal entry i is the i-th column (= row) sum of B.
  const Vector row_sums = mxv(b, Vector::indicator(b.cols, [&] {
    std::vector<vidx_t> all(static_cast<std::size_t>(b.cols));
    for (vidx_t i = 0; i < b.cols; ++i) all[static_cast<std::size_t>(i)] = i;
    return all;
  }()));

  const std::vector<count_t> d_bb = diag(bb).to_dense();
  const std::vector<count_t> d_bhb = diag(bhb).to_dense();
  const std::vector<count_t> d_jb = row_sums.to_dense();
  const std::vector<count_t> d_b = diag(b).to_dense();

  std::vector<count_t> s(static_cast<std::size_t>(g.n1()));
  for (std::size_t i = 0; i < s.size(); ++i) {
    const count_t numerator = d_bb[i] - d_bhb[i] - d_jb[i] + d_b[i];
    require(numerator % 2 == 0, "gb tip: odd diagonal entry");
    s[i] = numerator / 2;  // ¼ in the paper's Eq. (19) is a typo; see spec.cpp
  }
  return s;
}

std::vector<count_t> wing_support(const graph::BipartiteGraph& g) {
  const sparse::CsrCounts a = from_pattern(g.csr());
  const sparse::CsrCounts at = from_pattern(g.csc());
  const sparse::CsrCounts b_row = mxm(a, at);   // AAᵀ (m x m)
  const sparse::CsrCounts b_col = mxm(at, a);   // AᵀA (n x n)
  const sparse::CsrCounts aat_a = mxm(b_row, a);  // AAᵀA (m x n)

  // ∘A keeps only edge positions, so the rank-1 terms diag(AAᵀ)·1ᵀ,
  // 1·diag(AᵀA)ᵀ and J collapse to per-edge lookups.
  const std::vector<count_t> d1 = diag(b_row).to_dense();
  const std::vector<count_t> d2 = diag(b_col).to_dense();
  const sparse::CsrCounts core = ewise_mult(aat_a, a);

  std::vector<count_t> support;
  support.reserve(static_cast<std::size_t>(g.edge_count()));
  for (vidx_t u = 0; u < g.n1(); ++u) {
    // core carries A∘(AAᵀA); walk it alongside A's row to keep CSR order.
    const Vector row = extract_row(core, u);
    std::size_t k = 0;
    for (const vidx_t v : g.csr().row(u)) {
      count_t wedge_term = 0;
      if (k < row.nnz() && row.indices()[k] == v) {
        wedge_term = row.values()[k];
        ++k;
      }
      support.push_back(wedge_term - d1[static_cast<std::size_t>(u)] -
                        d2[static_cast<std::size_t>(v)] + 1);
    }
  }
  return support;
}

}  // namespace bfc::gb
