#include "chk/checked_math.hpp"
#include "gb/matrix.hpp"

#include <algorithm>

namespace bfc::gb {
namespace {

/// Values of row r as (index span, value span) helpers.
struct RowView {
  const vidx_t* idx;
  const count_t* val;
  std::size_t len;
};

RowView row_view(const sparse::CsrCounts& a, vidx_t r) {
  const auto lo = static_cast<std::size_t>(a.row_ptr[static_cast<std::size_t>(r)]);
  const auto hi =
      static_cast<std::size_t>(a.row_ptr[static_cast<std::size_t>(r) + 1]);
  return {a.col_idx.data() + lo, a.values.data() + lo, hi - lo};
}

}  // namespace

sparse::CsrCounts from_pattern(const sparse::CsrPattern& p) {
  sparse::CsrCounts c;
  c.rows = p.rows();
  c.cols = p.cols();
  c.row_ptr = p.row_ptr();
  c.col_idx = p.col_idx();
  c.values.assign(c.col_idx.size(), 1);
  return c;
}

sparse::CsrCounts mxm(const sparse::CsrCounts& a, const sparse::CsrCounts& b) {
  require(a.cols == b.rows, "gb::mxm: inner dimension mismatch");
  sparse::CsrCounts c;
  c.rows = a.rows;
  c.cols = b.cols;
  c.row_ptr.assign(static_cast<std::size_t>(a.rows) + 1, 0);

  std::vector<count_t> acc(static_cast<std::size_t>(b.cols), 0);
  std::vector<vidx_t> touched;
  for (vidx_t i = 0; i < a.rows; ++i) {
    touched.clear();
    const RowView ra = row_view(a, i);
    for (std::size_t ka = 0; ka < ra.len; ++ka) {
      const vidx_t k = ra.idx[ka];
      const count_t aik = ra.val[ka];
      const RowView rb = row_view(b, k);
      for (std::size_t kb = 0; kb < rb.len; ++kb) {
        const vidx_t j = rb.idx[kb];
        if (acc[static_cast<std::size_t>(j)] == 0) touched.push_back(j);
        acc[static_cast<std::size_t>(j)] = chk::checked_add(
            acc[static_cast<std::size_t>(j)],
            chk::checked_mul(aik, rb.val[kb]));
      }
    }
    std::sort(touched.begin(), touched.end());
    for (const vidx_t j : touched) {
      // Cancellation can produce explicit zeros; drop them.
      if (acc[static_cast<std::size_t>(j)] != 0) {
        c.col_idx.push_back(j);
        c.values.push_back(acc[static_cast<std::size_t>(j)]);
      }
      acc[static_cast<std::size_t>(j)] = 0;
    }
    c.row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<offset_t>(c.col_idx.size());
  }
  return c;
}

sparse::CsrCounts transpose(const sparse::CsrCounts& a) {
  sparse::CsrCounts t;
  t.rows = a.cols;
  t.cols = a.rows;
  t.row_ptr.assign(static_cast<std::size_t>(a.cols) + 1, 0);
  for (const vidx_t c : a.col_idx)
    ++t.row_ptr[static_cast<std::size_t>(c) + 1];
  for (std::size_t c = 0; c < static_cast<std::size_t>(a.cols); ++c)
    t.row_ptr[c + 1] += t.row_ptr[c];
  t.col_idx.resize(a.col_idx.size());
  t.values.resize(a.values.size());
  std::vector<offset_t> cursor(t.row_ptr.begin(), t.row_ptr.end() - 1);
  for (vidx_t r = 0; r < a.rows; ++r) {
    const RowView ra = row_view(a, r);
    for (std::size_t k = 0; k < ra.len; ++k) {
      const auto pos = static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(ra.idx[k])]++);
      t.col_idx[pos] = r;
      t.values[pos] = ra.val[k];
    }
  }
  return t;
}

namespace {

template <bool Multiply>
sparse::CsrCounts ewise(const sparse::CsrCounts& a, const sparse::CsrCounts& b) {
  require(a.rows == b.rows && a.cols == b.cols,
          "gb::ewise: dimension mismatch");
  sparse::CsrCounts c;
  c.rows = a.rows;
  c.cols = a.cols;
  c.row_ptr.assign(static_cast<std::size_t>(a.rows) + 1, 0);
  for (vidx_t r = 0; r < a.rows; ++r) {
    const RowView ra = row_view(a, r);
    const RowView rb = row_view(b, r);
    std::size_t i = 0, j = 0;
    auto push = [&](vidx_t col, count_t v) {
      if (v != 0) {
        c.col_idx.push_back(col);
        c.values.push_back(v);
      }
    };
    while (i < ra.len || j < rb.len) {
      if (j >= rb.len || (i < ra.len && ra.idx[i] < rb.idx[j])) {
        if constexpr (!Multiply) push(ra.idx[i], ra.val[i]);
        ++i;
      } else if (i >= ra.len || rb.idx[j] < ra.idx[i]) {
        if constexpr (!Multiply) push(rb.idx[j], rb.val[j]);
        ++j;
      } else {
        push(ra.idx[i],
             Multiply ? ra.val[i] * rb.val[j] : ra.val[i] + rb.val[j]);
        ++i;
        ++j;
      }
    }
    c.row_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<offset_t>(c.col_idx.size());
  }
  return c;
}

}  // namespace

sparse::CsrCounts ewise_mult(const sparse::CsrCounts& a,
                             const sparse::CsrCounts& b) {
  return ewise<true>(a, b);
}

sparse::CsrCounts ewise_add(const sparse::CsrCounts& a,
                            const sparse::CsrCounts& b) {
  return ewise<false>(a, b);
}

count_t reduce(const sparse::CsrCounts& a) {
  count_t total = 0;
  for (const count_t v : a.values) total = chk::checked_add(total, v);
  return total;
}

count_t trace(const sparse::CsrCounts& a) {
  require(a.rows == a.cols, "gb::trace: matrix not square");
  count_t total = 0;
  for (vidx_t r = 0; r < a.rows; ++r) {
    const RowView row = row_view(a, r);
    const auto* it = std::lower_bound(row.idx, row.idx + row.len, r);
    if (it != row.idx + row.len && *it == r)
      total = chk::checked_add(total, row.val[it - row.idx]);
  }
  return total;
}

Vector diag(const sparse::CsrCounts& a) {
  require(a.rows == a.cols, "gb::diag: matrix not square");
  std::vector<vidx_t> idx;
  std::vector<count_t> val;
  for (vidx_t r = 0; r < a.rows; ++r) {
    const RowView row = row_view(a, r);
    const auto* it = std::lower_bound(row.idx, row.idx + row.len, r);
    if (it != row.idx + row.len && *it == r) {
      idx.push_back(r);
      val.push_back(row.val[it - row.idx]);
    }
  }
  return Vector(a.rows, std::move(idx), std::move(val));
}

Vector extract_row(const sparse::CsrCounts& a, vidx_t i) {
  require(i >= 0 && i < a.rows, "gb::extract_row: row out of range");
  const RowView row = row_view(a, i);
  return Vector(a.cols, std::vector<vidx_t>(row.idx, row.idx + row.len),
                std::vector<count_t>(row.val, row.val + row.len));
}

Vector mxv(const sparse::CsrCounts& a, const Vector& x) {
  return mxv_row_range(a, 0, a.rows, x);
}

Vector mxv_row_range(const sparse::CsrCounts& a, vidx_t lo, vidx_t hi,
                     const Vector& x) {
  require(0 <= lo && lo <= hi && hi <= a.rows, "gb::mxv_row_range: bad range");
  require(x.size() == a.cols, "gb::mxv: dimension mismatch");
  const std::vector<count_t> xd = x.to_dense();
  std::vector<vidx_t> idx;
  std::vector<count_t> val;
  for (vidx_t r = lo; r < hi; ++r) {
    const RowView row = row_view(a, r);
    count_t acc = 0;
    for (std::size_t k = 0; k < row.len; ++k)
      acc = chk::checked_add(
          acc, chk::checked_mul(row.val[k],
                                xd[static_cast<std::size_t>(row.idx[k])]));
    if (acc != 0) {
      idx.push_back(r);
      val.push_back(acc);
    }
  }
  return Vector(a.rows, std::move(idx), std::move(val));
}

Vector vxm(const Vector& x, const sparse::CsrCounts& a) {
  require(x.size() == a.rows, "gb::vxm: dimension mismatch");
  std::vector<count_t> acc(static_cast<std::size_t>(a.cols), 0);
  for (std::size_t k = 0; k < x.nnz(); ++k) {
    const vidx_t r = x.indices()[k];
    const count_t xv = x.values()[k];
    const RowView row = row_view(a, r);
    for (std::size_t j = 0; j < row.len; ++j)
      acc[static_cast<std::size_t>(row.idx[j])] = chk::checked_add(
          acc[static_cast<std::size_t>(row.idx[j])],
          chk::checked_mul(xv, row.val[j]));
  }
  return Vector::from_dense(acc);
}

sparse::CsrPattern pattern(const sparse::CsrCounts& a) {
  return sparse::CsrPattern(a.rows, a.cols, a.row_ptr, a.col_idx);
}

}  // namespace bfc::gb
