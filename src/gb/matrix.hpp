// GraphBLAS-style sparse matrix operations over the plus-times semiring on
// 64-bit integers. Matrices reuse sparse::CsrCounts; 0/1 patterns are
// promoted with from_pattern(). These primitives are sufficient to execute
// every expression in the paper's §II-§IV verbatim (Gram matrices,
// Hadamard products, traces, J-products, DIAG, masks).
#pragma once

#include "gb/vector.hpp"
#include "sparse/csr.hpp"
#include "util/common.hpp"

namespace bfc::gb {

/// 0/1 pattern -> integer matrix of ones on the same structure.
[[nodiscard]] sparse::CsrCounts from_pattern(const sparse::CsrPattern& p);

/// C = A·B over plus-times.
[[nodiscard]] sparse::CsrCounts mxm(const sparse::CsrCounts& a,
                                    const sparse::CsrCounts& b);

/// Aᵀ.
[[nodiscard]] sparse::CsrCounts transpose(const sparse::CsrCounts& a);

/// A ∘ B (element-wise multiply; the paper's Hadamard "∘").
[[nodiscard]] sparse::CsrCounts ewise_mult(const sparse::CsrCounts& a,
                                           const sparse::CsrCounts& b);

/// A + B (element-wise add, structural union).
[[nodiscard]] sparse::CsrCounts ewise_add(const sparse::CsrCounts& a,
                                          const sparse::CsrCounts& b);

/// Σ_ij A_ij — reduce to scalar.
[[nodiscard]] count_t reduce(const sparse::CsrCounts& a);

/// Γ(A) — trace (square only).
[[nodiscard]] count_t trace(const sparse::CsrCounts& a);

/// DIAG(A) as a sparse vector (square only) — the paper's Eq. (19) helper.
[[nodiscard]] Vector diag(const sparse::CsrCounts& a);

/// Row i of A as a sparse vector of length cols.
[[nodiscard]] Vector extract_row(const sparse::CsrCounts& a, vidx_t i);

/// y = A·x over plus-times.
[[nodiscard]] Vector mxv(const sparse::CsrCounts& a, const Vector& x);

/// y = Aᵀ·x without materialising the transpose.
[[nodiscard]] Vector vxm(const Vector& x, const sparse::CsrCounts& a);

/// y = A(rows lo..hi)·x, restricted to a contiguous row range: the
/// FLAME repartitioning "P = A0 / A2" selector the loop algorithms need.
/// Entries of y are indexed by the ORIGINAL row ids.
[[nodiscard]] Vector mxv_row_range(const sparse::CsrCounts& a, vidx_t lo,
                                   vidx_t hi, const Vector& x);

/// Pattern of the nonzero structure.
[[nodiscard]] sparse::CsrPattern pattern(const sparse::CsrCounts& a);

}  // namespace bfc::gb
